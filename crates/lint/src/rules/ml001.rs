//! ML001 — lock-order discipline.
//!
//! Extracts every `Mutex`/`RwLock`/`RankedMutex`/`Condvar` struct field in
//! scope, reconstructs the nested-acquisition graph from `.lock()` /
//! `.read()` / `.write()` call sites (plus manifest-declared helper
//! functions and accessor aliases), and checks:
//!
//! 1. every lock field is ranked in `lock_order.toml` (and every `Condvar`
//!    is paired with a ranked mutex);
//! 2. every nested acquisition goes from a lower rank to a strictly higher
//!    rank;
//! 3. the acquisition graph is acyclic (catches inversions even between
//!    locks the manifest missed);
//! 4. `RankedMutex::new(rank, "Struct.field", ..)` literals agree with the
//!    manifest, so the runtime checker and the static checker can never
//!    drift apart.

use std::collections::{BTreeMap, BTreeSet};

use crate::lexer::{Token, TokenKind};
use crate::manifest::Manifest;
use crate::rules::{is_ident, skip_delimited};
use crate::Finding;

const LOCK_TYPES: [&str; 3] = ["Mutex", "RwLock", "RankedMutex"];

/// A `Mutex`/`RwLock`/`RankedMutex`/`Condvar` field declaration.
#[derive(Debug, Clone)]
pub struct LockField {
    pub struct_name: String,
    pub field_name: String,
    pub is_condvar: bool,
    /// Generic lock wrappers (`RankedMutex.inner`) are discovered but exempt
    /// from ranking: their order is a property of each ranked instance, not
    /// of the wrapper type.
    pub exempt: bool,
    pub file: String,
    pub line: u32,
}

impl LockField {
    pub fn id(&self) -> String {
        format!("{}.{}", self.struct_name, self.field_name)
    }
}

/// One observed nested acquisition: `acquired` taken while `held` was held.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
struct Edge {
    held: String,
    acquired: String,
    file: String,
    line: u32,
}

/// Harvest lock fields from every `struct` item in a token stream.
pub fn collect_lock_fields(file: &str, tokens: &[Token]) -> Vec<LockField> {
    let mut fields = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        if !is_ident(&tokens[i], "struct") {
            i += 1;
            continue;
        }
        let Some(name_tok) = tokens.get(i + 1) else {
            break;
        };
        let struct_name = name_tok.text.clone();
        // Find the field block `{`, skipping generics; tuple structs (`(`)
        // and unit structs (`;`) carry no named lock fields we track.
        let mut j = i + 2;
        let mut angle = 0i32;
        let body_start = loop {
            match tokens.get(j).map(|t| t.text.as_str()) {
                Some("<") => angle += 1,
                Some(">") => angle -= 1,
                Some("{") if angle == 0 => break Some(j),
                Some("(") | Some(";") if angle == 0 => break None,
                None => break None,
                _ => {}
            }
            j += 1;
        };
        let Some(body_start) = body_start else {
            i += 2;
            continue;
        };
        let body_end = skip_delimited(tokens, body_start) - 1;

        // Walk `field_name: Type` entries at depth 0 of the body.
        let mut k = body_start + 1;
        while k < body_end {
            // Skip attributes and visibility.
            if tokens[k].text == "#" && tokens.get(k + 1).is_some_and(|t| t.text == "[") {
                k = skip_delimited(tokens, k + 1);
                continue;
            }
            if is_ident(&tokens[k], "pub") {
                k += 1;
                if tokens.get(k).is_some_and(|t| t.text == "(") {
                    k = skip_delimited(tokens, k);
                }
                continue;
            }
            if tokens[k].kind == TokenKind::Ident
                && tokens.get(k + 1).is_some_and(|t| t.text == ":")
            {
                let field_name = tokens[k].text.clone();
                let field_line = tokens[k].line;
                // Type tokens run to the `,` (or body end) at angle/paren
                // depth 0.
                let mut depth = 0i32;
                let mut t = k + 2;
                let mut type_idents: Vec<&str> = Vec::new();
                // `guard: &'a Mutex<T>` aliases a lock ranked at its owning
                // struct; only owned lock fields get their own identity.
                let is_reference = tokens[t].text == "&";
                while t < body_end {
                    match tokens[t].text.as_str() {
                        "<" | "(" | "[" => depth += 1,
                        ">" | ")" | "]" => depth -= 1,
                        "," if depth == 0 => break,
                        _ => {}
                    }
                    if tokens[t].kind == TokenKind::Ident {
                        type_idents.push(tokens[t].text.as_str());
                    }
                    t += 1;
                }
                let is_condvar = !is_reference && type_idents.contains(&"Condvar");
                let is_lock = !is_reference && LOCK_TYPES.iter().any(|l| type_idents.contains(l));
                if is_lock || is_condvar {
                    fields.push(LockField {
                        exempt: struct_name == "RankedMutex",
                        struct_name: struct_name.clone(),
                        field_name,
                        is_condvar,
                        file: file.to_string(),
                        line: field_line,
                    });
                }
                k = t + 1;
                continue;
            }
            k += 1;
        }
        i = body_end + 1;
    }
    fields
}

/// Resolve a field-access chain (last identifier = field name) to a lock id.
///
/// Resolution order: the impl target's own fields, then a workspace-unique
/// field-name match.  Ambiguous or unknown names resolve to `None` — the
/// coverage pass still guarantees every *field* is ranked, so an unresolved
/// call site can only lose edge precision, not hide an unranked lock.
fn resolve_field(
    field: &str,
    impl_target: Option<&str>,
    fields_by_struct: &BTreeMap<String, BTreeSet<String>>,
    structs_by_field: &BTreeMap<String, BTreeSet<String>>,
) -> Option<String> {
    if let Some(target) = impl_target {
        if fields_by_struct
            .get(target)
            .is_some_and(|f| f.contains(field))
        {
            return Some(format!("{target}.{field}"));
        }
    }
    let owners = structs_by_field.get(field)?;
    if owners.len() == 1 {
        let owner = owners.iter().next().expect("len checked");
        return Some(format!("{owner}.{field}"));
    }
    None
}

/// Resolve an accessor-method call (`self.shard(key)`) through the
/// `[aliases]` manifest section.
fn resolve_alias(method: &str, impl_target: Option<&str>, manifest: &Manifest) -> Option<String> {
    if let Some(target) = impl_target {
        if let Some(field) = manifest.aliases.get(&format!("{target}.{method}")) {
            return Some(format!("{target}.{field}"));
        }
    }
    let suffix = format!(".{method}");
    let mut hits = manifest
        .aliases
        .iter()
        .filter(|(key, _)| key.ends_with(&suffix));
    let first = hits.next()?;
    if hits.next().is_some() {
        return None;
    }
    let owner = first.0.strip_suffix(&suffix).expect("filtered on suffix");
    Some(format!("{owner}.{}", first.1))
}

/// Extract the receiver chain that ends at `end` (inclusive), walking
/// backwards over `ident`/`number` segments joined by `.`.
///
/// Returns the chain in source order.  Bails (None) on receivers containing
/// interior calls or indexing — those are handled by the forward parser at
/// helper-call sites, and are unresolvable here anyway.
fn receiver_chain(tokens: &[Token], end: usize) -> Option<Vec<String>> {
    let mut chain = vec![tokens[end].text.clone()];
    let mut j = end;
    while j >= 2
        && tokens[j - 1].text == "."
        && matches!(tokens[j - 2].kind, TokenKind::Ident | TokenKind::Number)
    {
        chain.insert(0, tokens[j - 2].text.clone());
        j -= 2;
    }
    Some(chain)
}

/// Forward-parse the first argument of a helper call starting at `start`
/// (just past the helper's `(`): a `&`/`mut`-prefixed chain of fields,
/// indexes, and at most one trailing accessor call.
///
/// Returns `(chain, trailing_method)`.
fn helper_arg_chain(tokens: &[Token], start: usize) -> (Vec<String>, Option<String>) {
    let mut j = start;
    while tokens
        .get(j)
        .is_some_and(|t| t.text == "&" || is_ident(t, "mut"))
    {
        j += 1;
    }
    let mut chain = Vec::new();
    let mut method = None;
    while let Some(tok) = tokens.get(j) {
        if !matches!(tok.kind, TokenKind::Ident | TokenKind::Number) {
            break;
        }
        chain.push(tok.text.clone());
        j += 1;
        match tokens.get(j).map(|t| t.text.as_str()) {
            Some("(") => {
                // Accessor call: `self.shard(key)`.
                method = Some(chain.pop().unwrap_or_default());
                break;
            }
            Some("[") => {
                // Indexing (`self.latencies[stripe]`) — the lock identity is
                // the field, so skip the index expression.
                j = skip_delimited(tokens, j);
                if tokens.get(j).is_some_and(|t| t.text == ".") {
                    j += 1;
                } else {
                    break;
                }
            }
            Some(".") => j += 1,
            _ => break,
        }
    }
    (chain, method)
}

/// Does the acquisition expression beginning at `expr_start` sit in a
/// `let`-binding?  Returns the bound variable name.
fn let_binding(tokens: &[Token], expr_start: usize) -> Option<String> {
    if expr_start < 2 || tokens[expr_start - 1].text != "=" {
        return None;
    }
    let mut j = expr_start - 2;
    // Skip a type ascription `let x: Foo = ...` back to the ident.
    // (Not produced by our code today, but cheap to accept.)
    let var = if tokens[j].kind == TokenKind::Ident {
        tokens[j].text.clone()
    } else {
        return None;
    };
    if j >= 1 && is_ident(&tokens[j - 1], "mut") {
        j -= 1;
    }
    if j >= 1 && is_ident(&tokens[j - 1], "let") {
        Some(var)
    } else {
        None
    }
}

struct FnAnalyzer<'a> {
    file: String,
    manifest: &'a Manifest,
    fields_by_struct: &'a BTreeMap<String, BTreeSet<String>>,
    structs_by_field: &'a BTreeMap<String, BTreeSet<String>>,
    exempt: &'a BTreeSet<String>,
    edges: Vec<Edge>,
    findings: Vec<Finding>,
}

#[derive(Debug)]
struct Held {
    lock_id: String,
    var: Option<String>,
    depth: i32,
}

impl FnAnalyzer<'_> {
    /// Walk one function body, tracking guard lifetimes and recording a
    /// nested-acquisition edge for every lock taken while another is held.
    fn analyze_fn(
        &mut self,
        tokens: &[Token],
        range: std::ops::Range<usize>,
        target: Option<&str>,
    ) {
        let mut held: Vec<Held> = Vec::new();
        let mut depth = 0i32;
        let mut i = range.start;
        while i < range.end {
            match tokens[i].text.as_str() {
                "{" => depth += 1,
                "}" => {
                    depth -= 1;
                    held.retain(|h| h.depth <= depth);
                }
                _ => {}
            }

            // `drop(guard)` releases a named guard early.
            if is_ident(&tokens[i], "drop")
                && tokens.get(i + 1).is_some_and(|t| t.text == "(")
                && tokens
                    .get(i + 2)
                    .is_some_and(|t| t.kind == TokenKind::Ident)
                && tokens.get(i + 3).is_some_and(|t| t.text == ")")
            {
                let var = &tokens[i + 2].text;
                held.retain(|h| h.var.as_deref() != Some(var.as_str()));
                i += 4;
                continue;
            }

            let acquisition = self.acquisition_at(tokens, i, target);
            if let Some((lock_id, expr_start)) = acquisition {
                let line = tokens[i].line;
                if !self.exempt.contains(&lock_id) {
                    for h in &held {
                        if h.lock_id == lock_id {
                            self.findings.push(Finding::new(
                                "ML001",
                                &self.file,
                                line,
                                format!(
                                    "`{lock_id}` re-acquired while already held; this self-deadlocks"
                                ),
                            ));
                        } else {
                            self.edges.push(Edge {
                                held: h.lock_id.clone(),
                                acquired: lock_id.clone(),
                                file: self.file.to_string(),
                                line,
                            });
                        }
                    }
                    let var = let_binding(tokens, expr_start);
                    if var.is_some() {
                        held.push(Held {
                            lock_id,
                            var,
                            depth,
                        });
                    }
                    // Temporaries (`*self.x.lock() += 1`) release at the end
                    // of the statement; edges from currently-held locks were
                    // already recorded, so they need no tracking.
                }
            }
            i += 1;
        }
    }

    /// If an acquisition happens at token `i`, return the lock id and the
    /// index where the acquisition expression starts (for let-binding
    /// detection).
    fn acquisition_at(
        &self,
        tokens: &[Token],
        i: usize,
        target: Option<&str>,
    ) -> Option<(String, usize)> {
        let tok = &tokens[i];
        if tok.kind != TokenKind::Ident {
            return None;
        }
        // Method form: `recv.lock()` / `.read()` / `.write()` — all nullary
        // on std and ranked locks, which conveniently excludes io `write`.
        if matches!(tok.text.as_str(), "lock" | "read" | "write")
            && i >= 2
            && tokens[i - 1].text == "."
            && tokens.get(i + 1).is_some_and(|t| t.text == "(")
            && tokens.get(i + 2).is_some_and(|t| t.text == ")")
        {
            let recv_end = i - 2;
            if tokens[recv_end].text == ")" {
                // Accessor receiver: `self.shard(key).lock()`.
                let open = matching_open(tokens, recv_end)?;
                if open >= 1 && tokens[open - 1].kind == TokenKind::Ident {
                    let method = tokens[open - 1].text.clone();
                    let lock_id = resolve_alias(&method, target, self.manifest)?;
                    let chain_start = chain_start_index(tokens, open - 1);
                    return Some((lock_id, chain_start));
                }
                return None;
            }
            if matches!(tokens[recv_end].kind, TokenKind::Ident | TokenKind::Number) {
                let chain = receiver_chain(tokens, recv_end)?;
                let field = chain.last()?.clone();
                let in_self = chain.first().is_some_and(|c| c == "self");
                let lock_id = resolve_field(
                    &field,
                    if in_self { target } else { None },
                    self.fields_by_struct,
                    self.structs_by_field,
                )?;
                let chain_start = chain_start_index(tokens, recv_end);
                return Some((lock_id, chain_start));
            }
            return None;
        }
        // Helper form: `lock_or_poisoned(&self.x)` — manifest-declared.
        if self.manifest.lock_fns.contains_key(&tok.text)
            && tokens.get(i + 1).is_some_and(|t| t.text == "(")
            && (i == 0 || tokens[i - 1].text != ".")
        {
            let (chain, method) = helper_arg_chain(tokens, i + 2);
            let lock_id = if let Some(method) = method {
                resolve_alias(&method, target, self.manifest)?
            } else {
                let field = chain.last()?.clone();
                let in_self = chain.first().is_some_and(|c| c == "self");
                resolve_field(
                    &field,
                    if in_self { target } else { None },
                    self.fields_by_struct,
                    self.structs_by_field,
                )?
            };
            return Some((lock_id, i));
        }
        None
    }
}

/// Index of the `(` matching the `)` at `close`.
fn matching_open(tokens: &[Token], close: usize) -> Option<usize> {
    let mut depth = 0i32;
    let mut j = close;
    loop {
        match tokens[j].text.as_str() {
            ")" | "]" | "}" => depth += 1,
            "(" | "[" | "{" => {
                depth -= 1;
                if depth == 0 {
                    return Some(j);
                }
            }
            _ => {}
        }
        if j == 0 {
            return None;
        }
        j -= 1;
    }
}

/// Walk a dotted chain backwards from `end` to its first segment's index.
fn chain_start_index(tokens: &[Token], end: usize) -> usize {
    let mut j = end;
    while j >= 2
        && tokens[j - 1].text == "."
        && matches!(tokens[j - 2].kind, TokenKind::Ident | TokenKind::Number)
    {
        j -= 2;
    }
    j
}

/// Scan items in `range`, dispatching function bodies to the analyzer with
/// the enclosing `impl` target attached.
fn scan_items(
    analyzer: &mut FnAnalyzer<'_>,
    tokens: &[Token],
    range: std::ops::Range<usize>,
    impl_target: Option<&str>,
) {
    let mut i = range.start;
    while i < range.end {
        let tok = &tokens[i];
        if is_ident(tok, "impl") {
            // `impl<G> Trait for Type { .. }` — the target is the last
            // angle-depth-0 path ident before the body, reset at `for`,
            // frozen at `where`.
            let mut angle = 0i32;
            let mut target: Option<String> = None;
            let mut frozen = false;
            let mut j = i + 1;
            while j < range.end {
                let t = &tokens[j];
                match t.text.as_str() {
                    "<" => angle += 1,
                    ">" => angle -= 1,
                    "{" if angle == 0 => break,
                    ";" if angle == 0 => break,
                    "for" if angle == 0 => target = None,
                    "where" if angle == 0 => frozen = true,
                    _ => {
                        if angle == 0 && !frozen && t.kind == TokenKind::Ident {
                            target = Some(t.text.clone());
                        }
                    }
                }
                j += 1;
            }
            if j < range.end && tokens[j].text == "{" {
                let end = skip_delimited(tokens, j) - 1;
                scan_items(analyzer, tokens, j + 1..end, target.as_deref());
                i = end + 1;
            } else {
                i = j + 1;
            }
            continue;
        }
        if is_ident(tok, "fn") {
            // Find the body `{` (or a bodiless `;`) at delimiter depth 0.
            let mut depth = 0i32;
            let mut j = i + 1;
            while j < range.end {
                match tokens[j].text.as_str() {
                    "(" | "[" => depth += 1,
                    ")" | "]" => depth -= 1,
                    ";" if depth == 0 => break,
                    "{" if depth == 0 => break,
                    _ => {}
                }
                j += 1;
            }
            if j < range.end && tokens[j].text == "{" {
                let end = skip_delimited(tokens, j) - 1;
                analyzer.analyze_fn(tokens, j + 1..end, impl_target);
                i = end + 1;
            } else {
                i = j + 1;
            }
            continue;
        }
        if is_ident(tok, "mod") || is_ident(tok, "trait") {
            // Recurse into inline modules and trait default bodies; neither
            // carries an impl target.
            let mut j = i + 1;
            while j < range.end && tokens[j].text != "{" && tokens[j].text != ";" {
                j += 1;
            }
            if j < range.end && tokens[j].text == "{" {
                let end = skip_delimited(tokens, j) - 1;
                scan_items(analyzer, tokens, j + 1..end, None);
                i = end + 1;
            } else {
                i = j + 1;
            }
            continue;
        }
        i += 1;
    }
}

/// Check `RankedMutex::new(rank, "Struct.field", ..)` literals against the
/// manifest so the runtime checker cannot drift from the static one.
fn check_ranked_ctors(
    file: &str,
    tokens: &[Token],
    manifest: &Manifest,
    findings: &mut Vec<Finding>,
) {
    let mut i = 0usize;
    while i + 4 < tokens.len() {
        if is_ident(&tokens[i], "RankedMutex")
            && tokens[i + 1].text == "::"
            && is_ident(&tokens[i + 2], "new")
            && tokens[i + 3].text == "("
        {
            let line = tokens[i].line;
            let rank_tok = &tokens[i + 4];
            let name_tok = tokens.get(i + 6);
            if rank_tok.kind != TokenKind::Number
                || tokens.get(i + 5).is_none_or(|t| t.text != ",")
                || !name_tok.is_some_and(|t| t.kind == TokenKind::Str)
            {
                findings.push(Finding::new(
                    "ML001",
                    file,
                    line,
                    "RankedMutex::new must take a literal rank and a literal \
                     \"Struct.field\" name so the manifest can cross-check them"
                        .to_string(),
                ));
                i += 1;
                continue;
            }
            let name = name_tok
                .map(|t| t.text.trim_matches('"').to_string())
                .unwrap_or_default();
            let rank: Option<u32> = rank_tok.text.parse().ok();
            match (manifest.ranks.get(&name), rank) {
                (None, _) => findings.push(Finding::new(
                    "ML001",
                    file,
                    line,
                    format!("RankedMutex `{name}` is not declared in lock_order.toml"),
                )),
                (Some(&declared), Some(literal)) if declared != literal => {
                    findings.push(Finding::new(
                        "ML001",
                        file,
                        line,
                        format!(
                            "RankedMutex `{name}` constructed with rank {literal} but \
                             lock_order.toml declares {declared}"
                        ),
                    ))
                }
                _ => {}
            }
        }
        i += 1;
    }
}

/// Run ML001 over a set of files (already cfg(test)-stripped).
pub fn run(files: &[(String, Vec<Token>)], manifest: &Manifest, findings: &mut Vec<Finding>) {
    // Pass 1: harvest lock fields everywhere.
    let mut all_fields: Vec<LockField> = Vec::new();
    for (file, tokens) in files {
        all_fields.extend(collect_lock_fields(file, tokens));
    }
    let mut fields_by_struct: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
    let mut structs_by_field: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
    let mut exempt: BTreeSet<String> = BTreeSet::new();
    for f in &all_fields {
        if f.is_condvar {
            continue;
        }
        fields_by_struct
            .entry(f.struct_name.clone())
            .or_default()
            .insert(f.field_name.clone());
        structs_by_field
            .entry(f.field_name.clone())
            .or_default()
            .insert(f.struct_name.clone());
        if f.exempt {
            exempt.insert(f.id());
        }
    }

    // Pass 2: manifest coverage — every discovered lock must be ranked,
    // every condvar paired.
    for f in &all_fields {
        if f.exempt {
            continue;
        }
        let id = f.id();
        if f.is_condvar {
            if !manifest.condvars.contains_key(&id) {
                findings.push(Finding::new(
                    "ML001",
                    &f.file,
                    f.line,
                    format!("condvar `{id}` is not paired with a ranked lock in lock_order.toml"),
                ));
            }
        } else if !manifest.ranks.contains_key(&id) {
            findings.push(Finding::new(
                "ML001",
                &f.file,
                f.line,
                format!("lock `{id}` has no rank in lock_order.toml"),
            ));
        }
    }
    // Stale manifest entries point at locks that no longer exist.
    let known: BTreeSet<String> = all_fields.iter().map(|f| f.id()).collect();
    for name in manifest.ranks.keys().chain(manifest.condvars.keys()) {
        if !known.contains(name) {
            findings.push(Finding::new(
                "ML001",
                "crates/lint/lock_order.toml",
                0,
                format!("manifest names `{name}` but no such lock field exists"),
            ));
        }
    }

    // Pass 3: acquisition edges.
    let mut analyzer = FnAnalyzer {
        file: String::new(),
        manifest,
        fields_by_struct: &fields_by_struct,
        structs_by_field: &structs_by_field,
        exempt: &exempt,
        edges: Vec::new(),
        findings: Vec::new(),
    };
    for (file, tokens) in files {
        analyzer.file = file.clone();
        scan_items(&mut analyzer, tokens, 0..tokens.len(), None);
        check_ranked_ctors(file, tokens, manifest, findings);
    }
    let FnAnalyzer {
        edges,
        findings: fn_findings,
        ..
    } = analyzer;
    findings.extend(fn_findings);

    // Pass 4: rank monotonicity on each edge.
    let mut edge_set: BTreeSet<(String, String)> = BTreeSet::new();
    for e in &edges {
        edge_set.insert((e.held.clone(), e.acquired.clone()));
        if let (Some(&from), Some(&to)) =
            (manifest.ranks.get(&e.held), manifest.ranks.get(&e.acquired))
        {
            if from >= to {
                findings.push(Finding::new(
                    "ML001",
                    &e.file,
                    e.line,
                    format!(
                        "`{}` (rank {to}) acquired while holding `{}` (rank {from}); \
                         ranks must strictly increase along acquisition chains",
                        e.acquired, e.held
                    ),
                ));
            }
        }
    }

    // Pass 5: cycles in the raw graph (covers unranked locks too).
    if let Some(cycle) = find_cycle(&edge_set) {
        findings.push(Finding::new(
            "ML001",
            files.first().map(|(f, _)| f.as_str()).unwrap_or(""),
            0,
            format!(
                "acquisition graph contains a cycle: {} — concurrent callers can deadlock",
                cycle.join(" -> ")
            ),
        ));
    }
}

/// DFS cycle detection over the acquisition edge set.
fn find_cycle(edges: &BTreeSet<(String, String)>) -> Option<Vec<String>> {
    let mut adjacency: BTreeMap<&str, Vec<&str>> = BTreeMap::new();
    for (a, b) in edges {
        adjacency.entry(a.as_str()).or_default().push(b.as_str());
    }
    let mut visited: BTreeSet<&str> = BTreeSet::new();
    for start in adjacency.keys().copied().collect::<Vec<_>>() {
        if visited.contains(start) {
            continue;
        }
        let mut stack: Vec<(&str, usize)> = vec![(start, 0)];
        let mut path: Vec<&str> = vec![start];
        let mut on_path: BTreeSet<&str> = [start].into();
        visited.insert(start);
        while let Some((node, next)) = stack.last_mut() {
            let succ = adjacency.get(*node).map(|v| v.as_slice()).unwrap_or(&[]);
            if *next < succ.len() {
                let child = succ[*next];
                *next += 1;
                if on_path.contains(child) {
                    let from = path.iter().position(|n| *n == child).unwrap_or(0);
                    let mut cycle: Vec<String> =
                        path[from..].iter().map(|s| s.to_string()).collect();
                    cycle.push(child.to_string());
                    return Some(cycle);
                }
                if visited.insert(child) {
                    stack.push((child, 0));
                    path.push(child);
                    on_path.insert(child);
                }
            } else {
                on_path.remove(*node);
                path.pop();
                stack.pop();
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn manifest(text: &str) -> Manifest {
        crate::manifest::parse(text).expect("test manifest parses")
    }

    fn run_on(src: &str, m: &Manifest) -> Vec<Finding> {
        let tokens = crate::rules::strip_cfg_test(&lex(src).tokens);
        let files = vec![("test.rs".to_string(), tokens)];
        let mut findings = Vec::new();
        run(&files, m, &mut findings);
        findings
    }

    const TWO_LOCKS: &str = r#"
use std::sync::Mutex;
struct A { low: Mutex<u32>, high: Mutex<u32> }
"#;

    #[test]
    fn collects_lock_and_condvar_fields() {
        let src = r#"
struct Gate { state: Mutex<GateState>, freed: Condvar, limit: usize }
struct Table { slots: RankedMutex<HashMap<u64, u64>> }
"#;
        let fields = collect_lock_fields("f.rs", &lex(src).tokens);
        let ids: Vec<String> = fields.iter().map(|f| f.id()).collect();
        assert_eq!(ids, ["Gate.state", "Gate.freed", "Table.slots"]);
        assert!(fields[1].is_condvar);
    }

    #[test]
    fn in_order_acquisition_is_clean() {
        let m = manifest("[ranks]\n\"A.low\" = 1\n\"A.high\" = 2\n");
        let src = format!(
            "{TWO_LOCKS}
impl A {{
    fn ordered(&self) {{
        let a = self.low.lock().unwrap();
        let b = self.high.lock().unwrap();
    }}
}}"
        );
        assert!(run_on(&src, &m).is_empty(), "{:?}", run_on(&src, &m));
    }

    #[test]
    fn inverted_acquisition_is_flagged() {
        let m = manifest("[ranks]\n\"A.low\" = 1\n\"A.high\" = 2\n");
        let src = format!(
            "{TWO_LOCKS}
impl A {{
    fn inverted(&self) {{
        let b = self.high.lock().unwrap();
        let a = self.low.lock().unwrap();
    }}
}}"
        );
        let findings = run_on(&src, &m);
        assert!(findings
            .iter()
            .any(|f| f.message.contains("strictly increase")));
    }

    #[test]
    fn dropped_guard_is_released() {
        let m = manifest("[ranks]\n\"A.low\" = 1\n\"A.high\" = 2\n");
        let src = format!(
            "{TWO_LOCKS}
impl A {{
    fn sequential(&self) {{
        let b = self.high.lock().unwrap();
        drop(b);
        let a = self.low.lock().unwrap();
    }}
}}"
        );
        assert!(run_on(&src, &m).is_empty());
    }

    #[test]
    fn scope_exit_releases_guard() {
        let m = manifest("[ranks]\n\"A.low\" = 1\n\"A.high\" = 2\n");
        let src = format!(
            "{TWO_LOCKS}
impl A {{
    fn scoped(&self) {{
        {{ let b = self.high.lock().unwrap(); }}
        let a = self.low.lock().unwrap();
    }}
}}"
        );
        assert!(run_on(&src, &m).is_empty());
    }

    #[test]
    fn unranked_lock_is_a_coverage_finding() {
        let m = manifest("[ranks]\n\"A.low\" = 1\n");
        let src = "struct A { low: Mutex<u32>, high: Mutex<u32> }";
        let findings = run_on(src, &m);
        assert!(findings.iter().any(|f| f.message.contains("A.high")));
    }

    #[test]
    fn stale_manifest_entry_is_flagged() {
        let m = manifest("[ranks]\n\"A.low\" = 1\n\"Gone.lock\" = 9\n");
        let src = "struct A { low: Mutex<u32> }";
        let findings = run_on(src, &m);
        assert!(findings.iter().any(|f| f.message.contains("Gone.lock")));
    }

    #[test]
    fn helper_fn_acquisitions_build_edges() {
        let m = manifest(
            "[ranks]\n\"A.low\" = 1\n\"A.high\" = 2\n[lock_fns]\nlock_or_poisoned = \"lock\"\n",
        );
        let src = format!(
            "{TWO_LOCKS}
impl A {{
    fn inverted(&self) {{
        let b = lock_or_poisoned(&self.high);
        let a = lock_or_poisoned(&self.low);
    }}
}}"
        );
        let findings = run_on(&src, &m);
        assert!(findings
            .iter()
            .any(|f| f.message.contains("strictly increase")));
    }

    #[test]
    fn alias_accessor_resolves_through_manifest() {
        let m = manifest(
            "[ranks]\n\"Cache.shards\" = 5\n\"A.low\" = 1\n[aliases]\n\"Cache.shard\" = \"shards\"\n",
        );
        let src = r#"
struct Cache { shards: Vec<Mutex<u32>> }
struct A { low: Mutex<u32> }
impl Cache {
    fn get(&self, a: &A) {
        let s = self.shard(0).lock().unwrap();
        let x = a.low.lock().unwrap();
    }
}
"#;
        let findings = run_on(src, &m);
        // shards rank 5 then low rank 1 — inversion through the alias.
        assert!(findings
            .iter()
            .any(|f| f.message.contains("strictly increase")));
    }

    #[test]
    fn ranked_ctor_literal_must_match_manifest() {
        let m = manifest("[ranks]\n\"Gate.state\" = 10\n");
        let src = r#"
struct Gate { state: RankedMutex<u32> }
impl Gate {
    fn new() -> Self {
        Self { state: RankedMutex::new(99, "Gate.state", 0) }
    }
}
"#;
        let findings = run_on(src, &m);
        assert!(findings
            .iter()
            .any(|f| f.message.contains("rank 99") && f.message.contains("declares 10")));
    }

    #[test]
    fn cycle_without_ranks_is_detected() {
        let m = manifest("[ranks]\n\"A.low\" = 1\n\"A.high\" = 2\n");
        // Two functions acquiring in opposite orders: classic AB-BA.
        let src = format!(
            "{TWO_LOCKS}
impl A {{
    fn ab(&self) {{
        let a = self.low.lock().unwrap();
        let b = self.high.lock().unwrap();
    }}
    fn ba(&self) {{
        let b = self.high.lock().unwrap();
        let a = self.low.lock().unwrap();
    }}
}}"
        );
        let findings = run_on(&src, &m);
        assert!(findings.iter().any(|f| f.message.contains("cycle")));
    }

    #[test]
    fn same_lock_reacquisition_is_flagged() {
        let m = manifest("[ranks]\n\"A.low\" = 1\n\"A.high\" = 2\n");
        let src = format!(
            "{TWO_LOCKS}
impl A {{
    fn twice(&self) {{
        let a = self.low.lock().unwrap();
        let b = self.low.lock().unwrap();
    }}
}}"
        );
        let findings = run_on(&src, &m);
        assert!(findings.iter().any(|f| f.message.contains("self-deadlock")));
    }
}
