//! ML003 — float byte-identity.
//!
//! Plan equality and cache keys must be byte-identical across replicas: the
//! delta-replanning oracle compares `PlanOutcome`s bitwise, and a tolerant
//! (or IEEE `==`) comparison would let two replicas disagree about "same
//! plan" whenever a NaN or -0.0 sneaks in.  This pass flags `==`/`!=` whose
//! operands involve floats, and `.hash(..)` called on a float field, unless
//! the comparison goes through `to_bits()`.

use std::collections::BTreeSet;

use crate::lexer::{Token, TokenKind};
use crate::rules::{is_ident, skip_delimited};
use crate::Finding;

/// Harvest the names of struct fields whose declared type is exactly `f64`
/// or `f32` (directly, not behind containers — those compare structurally
/// through their own `PartialEq`).
pub fn collect_float_fields(tokens: &[Token]) -> BTreeSet<String> {
    let mut fields = BTreeSet::new();
    let mut i = 0usize;
    while i + 3 < tokens.len() {
        if tokens[i].kind == TokenKind::Ident
            && tokens[i + 1].text == ":"
            && (is_ident(&tokens[i + 2], "f64") || is_ident(&tokens[i + 2], "f32"))
            && tokens
                .get(i + 3)
                .is_some_and(|t| t.text == "," || t.text == "}" || t.text == ")")
        {
            fields.insert(tokens[i].text.clone());
        }
        i += 1;
    }
    fields
}

/// Is this literal a float (`1.05`, `1e-12`, `3f64`)?
fn is_float_literal(text: &str) -> bool {
    text.contains('.')
        || text.ends_with("f32")
        || text.ends_with("f64")
        || (text.contains(['e', 'E'])
            && !text.starts_with("0x")
            && !text.starts_with("0b")
            && !text.starts_with("0o"))
}

/// Walk one operand chain outward from an `==`/`!=` at `op`, in `dir`
/// (-1 = left, +1 = right).  Returns (mentions_float, mentions_to_bits).
fn scan_operand(
    tokens: &[Token],
    op: usize,
    dir: isize,
    float_fields: &BTreeSet<String>,
) -> (bool, bool) {
    let mut float = false;
    let mut bits = false;
    let mut j = op as isize + dir;
    let mut steps = 0;
    while j >= 0 && (j as usize) < tokens.len() && steps < 24 {
        let t = &tokens[j as usize];
        match t.kind {
            TokenKind::Ident => {
                if t.text == "to_bits" {
                    bits = true;
                } else if float_fields.contains(&t.text) {
                    float = true;
                }
            }
            TokenKind::Number => {
                if is_float_literal(&t.text) {
                    float = true;
                }
            }
            _ => {
                // Walking left, a `)` jumps over the whole call; walking
                // right, `(` does the same.
                if dir < 0 && t.text == ")" {
                    let mut depth = 0i32;
                    while j >= 0 {
                        match tokens[j as usize].text.as_str() {
                            ")" | "]" => depth += 1,
                            "(" | "[" => {
                                depth -= 1;
                                if depth == 0 {
                                    break;
                                }
                            }
                            _ => {}
                        }
                        if depth > 0 {
                            if let TokenKind::Ident = tokens[j as usize].kind {
                                if tokens[j as usize].text == "to_bits" {
                                    bits = true;
                                } else if float_fields.contains(&tokens[j as usize].text) {
                                    float = true;
                                }
                            }
                        }
                        j -= 1;
                    }
                } else if dir > 0 && t.text == "(" {
                    let end = skip_delimited(tokens, j as usize);
                    for inner in &tokens[j as usize..end] {
                        if inner.text == "to_bits" {
                            bits = true;
                        } else if float_fields.contains(&inner.text)
                            || (inner.kind == TokenKind::Number && is_float_literal(&inner.text))
                        {
                            float = true;
                        }
                    }
                    j = end as isize - 1;
                } else if t.text != "." && t.text != "&" && t.text != "*" {
                    // Any other punct ends the operand chain.
                    break;
                }
            }
        }
        j += dir;
        steps += 1;
    }
    (float, bits)
}

pub fn run(
    file: &str,
    tokens: &[Token],
    float_fields: &BTreeSet<String>,
    findings: &mut Vec<Finding>,
) {
    let mut i = 0usize;
    while i < tokens.len() {
        let tok = &tokens[i];
        if tok.text == "==" || tok.text == "!=" {
            let (lf, lb) = scan_operand(tokens, i, -1, float_fields);
            let (rf, rb) = scan_operand(tokens, i, 1, float_fields);
            if (lf || rf) && !(lb || rb) {
                findings.push(Finding::new(
                    "ML003",
                    file,
                    tok.line,
                    format!(
                        "float `{}` breaks byte-identity (NaN != NaN, -0.0 == +0.0); \
                         compare through `.to_bits()`",
                        tok.text
                    ),
                ));
            }
        }
        // `self.score.hash(state)` — IEEE floats have no Hash impl, so this
        // pattern only appears via manual f64-to-integer casts; flag the
        // direct field form.
        if is_ident(tok, "hash")
            && i >= 2
            && tokens[i - 1].text == "."
            && tokens.get(i + 1).is_some_and(|t| t.text == "(")
            && float_fields.contains(&tokens[i - 2].text)
        {
            findings.push(Finding::new(
                "ML003",
                file,
                tok.line,
                format!(
                    "hashing float field `{}` breaks byte-identity; hash `.to_bits()` instead",
                    tokens[i - 2].text
                ),
            ));
        }
        i += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::rules::strip_cfg_test;

    fn run_on(src: &str) -> Vec<Finding> {
        let tokens = strip_cfg_test(&lex(src).tokens);
        let floats = collect_float_fields(&tokens);
        let mut findings = Vec::new();
        run("test.rs", &tokens, &floats, &mut findings);
        findings
    }

    #[test]
    fn float_field_eq_is_flagged() {
        let src = r#"
struct P { score: f64 }
fn f(a: &P, b: &P) -> bool { a.score == b.score }
"#;
        let f = run_on(src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("to_bits"));
    }

    #[test]
    fn to_bits_comparison_is_clean() {
        let src = r#"
struct P { score: f64 }
fn f(a: &P, b: &P) -> bool { a.score.to_bits() == b.score.to_bits() }
"#;
        assert!(run_on(src).is_empty());
    }

    #[test]
    fn float_literal_comparison_is_flagged() {
        let f = run_on("fn f(x: f64) -> bool { x == 1.05 }");
        assert_eq!(f.len(), 1);
    }

    #[test]
    fn integer_comparison_is_clean() {
        let src = r#"
struct P { count: u32 }
fn f(a: &P, b: &P) -> bool { a.count == b.count && a.count != 3 }
"#;
        assert!(run_on(src).is_empty());
    }

    #[test]
    fn float_field_hash_is_flagged() {
        let src = r#"
struct P { score: f64 }
fn f(p: &P, state: &mut H) { p.score.hash(state); }
"#;
        let f = run_on(src);
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("hash"));
    }

    #[test]
    fn hex_literals_are_not_floats() {
        assert!(run_on("fn f(x: u32) -> bool { x == 0xDEAD }").is_empty());
    }
}
