//! ML004 — nondeterminism sources in planner-scoring code.
//!
//! The planner must produce byte-identical plans for identical inputs on
//! every replica (the delta-replanning oracle and the plan cache both
//! assume it).  Wall-clock reads and entropy-seeded RNGs inside scoring or
//! plan-construction code silently break that; this pass flags them so each
//! use is either removed or explicitly justified with a pragma.

use crate::lexer::{Token, TokenKind};
use crate::Finding;

/// `A::b` paths that read wall-clock or entropy.
const BANNED_PATHS: [(&str, &str); 2] = [("SystemTime", "now"), ("Instant", "now")];

/// Bare calls that construct entropy-seeded RNGs.
const BANNED_CALLS: [&str; 4] = ["thread_rng", "from_entropy", "from_os_rng", "random"];

pub fn run(file: &str, tokens: &[Token], findings: &mut Vec<Finding>) {
    let mut i = 0usize;
    while i < tokens.len() {
        let tok = &tokens[i];
        if tok.kind != TokenKind::Ident {
            i += 1;
            continue;
        }
        for (ty, method) in BANNED_PATHS {
            if tok.text == ty
                && tokens.get(i + 1).is_some_and(|t| t.text == "::")
                && tokens.get(i + 2).is_some_and(|t| t.text == method)
            {
                findings.push(Finding::new(
                    "ML004",
                    file,
                    tok.line,
                    format!(
                        "`{ty}::{method}()` in planner-scoring code: wall-clock reads \
                         diverge across replicas and break plan byte-identity"
                    ),
                ));
            }
        }
        if BANNED_CALLS.contains(&tok.text.as_str())
            && tokens.get(i + 1).is_some_and(|t| t.text == "(")
        {
            findings.push(Finding::new(
                "ML004",
                file,
                tok.line,
                format!(
                    "`{}()` seeds from process entropy; planner scoring must use a \
                     deterministic, seed-threaded RNG",
                    tok.text
                ),
            ));
        }
        i += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::rules::strip_cfg_test;

    fn run_on(src: &str) -> Vec<Finding> {
        let tokens = strip_cfg_test(&lex(src).tokens);
        let mut findings = Vec::new();
        run("test.rs", &tokens, &mut findings);
        findings
    }

    #[test]
    fn instant_now_is_flagged() {
        let f = run_on("fn f() { let t0 = Instant::now(); }");
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("wall-clock"));
    }

    #[test]
    fn system_time_now_is_flagged() {
        assert_eq!(run_on("fn f() { SystemTime::now(); }").len(), 1);
    }

    #[test]
    fn entropy_rngs_are_flagged() {
        let f = run_on("fn f() { let mut rng = thread_rng(); let s = StdRng::from_entropy(); }");
        assert_eq!(f.len(), 2);
    }

    #[test]
    fn seeded_rng_is_clean() {
        assert!(run_on("fn f(seed: u64) { let rng = StdRng::seed_from_u64(seed); }").is_empty());
    }

    #[test]
    fn elapsed_on_stored_instant_is_clean() {
        assert!(run_on("fn f(t: Instant) -> Duration { t.elapsed() }").is_empty());
    }
}
