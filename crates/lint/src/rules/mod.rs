//! Diagnostic passes over the lexed token stream.
//!
//! Shared conventions: every pass works on "effective tokens" — the lexed
//! stream with `#[cfg(test)]` items removed (test code unwraps and locks
//! freely) — and reports [`crate::Finding`]s that the driver then filters
//! through the allow pragmas.

pub mod ml001;
pub mod ml002;
pub mod ml003;
pub mod ml004;

use crate::lexer::{Token, TokenKind};

/// Index one past the delimiter that closes `open_index` (whose token must
/// be one of `(`/`[`/`{`), counting all three delimiter kinds.
pub(crate) fn skip_delimited(tokens: &[Token], open_index: usize) -> usize {
    let mut depth = 0i32;
    let mut i = open_index;
    while i < tokens.len() {
        match tokens[i].text.as_str() {
            "(" | "[" | "{" => depth += 1,
            ")" | "]" | "}" => {
                depth -= 1;
                if depth == 0 {
                    return i + 1;
                }
            }
            _ => {}
        }
        i += 1;
    }
    tokens.len()
}

/// Is this token an identifier with the given text?
pub(crate) fn is_ident(token: &Token, text: &str) -> bool {
    token.kind == TokenKind::Ident && token.text == text
}

/// Remove every `#[cfg(test)]`-attributed item (typically `mod tests { .. }`)
/// from the stream.
pub(crate) fn strip_cfg_test(tokens: &[Token]) -> Vec<Token> {
    let mut out = Vec::with_capacity(tokens.len());
    let mut i = 0usize;
    while i < tokens.len() {
        if tokens[i].text == "#"
            && tokens.get(i + 1).is_some_and(|t| t.text == "[")
            && tokens.get(i + 2).is_some_and(|t| is_ident(t, "cfg"))
            && tokens.get(i + 3).is_some_and(|t| t.text == "(")
            && tokens.get(i + 4).is_some_and(|t| is_ident(t, "test"))
            && tokens.get(i + 5).is_some_and(|t| t.text == ")")
            && tokens.get(i + 6).is_some_and(|t| t.text == "]")
        {
            i += 7;
            // Skip any further attributes on the same item.
            while i < tokens.len()
                && tokens[i].text == "#"
                && tokens.get(i + 1).is_some_and(|t| t.text == "[")
            {
                i = skip_delimited(tokens, i + 1);
            }
            // Skip the item itself: through `;`, or through its brace block.
            let mut depth = 0i32;
            while i < tokens.len() {
                match tokens[i].text.as_str() {
                    "(" | "[" => depth += 1,
                    ")" | "]" => depth -= 1,
                    ";" if depth == 0 => {
                        i += 1;
                        break;
                    }
                    "{" if depth == 0 => {
                        i = skip_delimited(tokens, i);
                        break;
                    }
                    _ => {}
                }
                i += 1;
            }
            continue;
        }
        out.push(tokens[i].clone());
        i += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    #[test]
    fn cfg_test_modules_are_stripped() {
        let src = r#"
fn live() { x.unwrap(); }
#[cfg(test)]
mod tests {
    #[test]
    fn t() { y.unwrap(); }
}
fn also_live() {}
"#;
        let stripped = strip_cfg_test(&lex(src).tokens);
        let text: Vec<&str> = stripped.iter().map(|t| t.text.as_str()).collect();
        assert!(text.contains(&"live"));
        assert!(text.contains(&"also_live"));
        assert!(!text.contains(&"tests"));
        assert!(!text.contains(&"y"));
    }

    #[test]
    fn cfg_test_fn_with_extra_attrs_is_stripped() {
        let src = "#[cfg(test)]\n#[allow(dead_code)]\nfn helper() { a.unwrap() }\nfn keep() {}";
        let stripped = strip_cfg_test(&lex(src).tokens);
        let text: Vec<&str> = stripped.iter().map(|t| t.text.as_str()).collect();
        assert!(!text.contains(&"helper"));
        assert!(text.contains(&"keep"));
    }
}
