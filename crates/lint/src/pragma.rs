//! `// malleus-lint: allow(MLnnn, reason = "...")` pragma parsing.
//!
//! A pragma suppresses the listed diagnostic codes on its *target line*: the
//! pragma's own line when it trails code, otherwise the next line that holds
//! code tokens.  The `reason` clause is mandatory — an allow without a
//! non-empty reason is itself a finding (ML005), so suppressions stay
//! reviewable.  ML005 findings are never suppressible.

use crate::lexer::Lexed;

/// A parsed, well-formed allow pragma.
#[derive(Debug, Clone)]
pub struct Allow {
    /// Line whose findings are suppressed.
    pub target_line: u32,
    /// Diagnostic codes suppressed (`"ML001"`, ...).
    pub codes: Vec<String>,
}

/// A malformed pragma (ML005 material).
#[derive(Debug, Clone)]
pub struct PragmaError {
    pub line: u32,
    pub message: String,
}

/// Scan a lexed file for pragmas.
pub fn parse_pragmas(lexed: &Lexed) -> (Vec<Allow>, Vec<PragmaError>) {
    let mut allows = Vec::new();
    let mut errors = Vec::new();

    // Lines holding at least one code token, for target-line resolution.
    let code_lines: std::collections::BTreeSet<u32> = lexed.tokens.iter().map(|t| t.line).collect();

    for comment in &lexed.comments {
        let Some(rest) = comment
            .text
            .find("malleus-lint:")
            .map(|i| comment.text[i + "malleus-lint:".len()..].trim())
        else {
            continue;
        };
        let line = comment.line;
        match parse_allow_clause(rest) {
            Ok(codes) => {
                let target_line = if code_lines.contains(&line) {
                    line
                } else {
                    // Pragma on its own line: target the next code line.
                    match code_lines.range((line + 1)..).next() {
                        Some(&l) => l,
                        None => {
                            errors.push(PragmaError {
                                line,
                                message: "allow pragma has no following code line to apply to"
                                    .into(),
                            });
                            continue;
                        }
                    }
                };
                allows.push(Allow { target_line, codes });
            }
            Err(message) => errors.push(PragmaError { line, message }),
        }
    }
    (allows, errors)
}

/// Parse `allow(ML001, ML002, reason = "...")`; returns the codes.
fn parse_allow_clause(rest: &str) -> Result<Vec<String>, String> {
    let rest = rest.trim();
    let Some(inner) = rest
        .strip_prefix("allow")
        .map(str::trim_start)
        .and_then(|r| r.strip_prefix('('))
        .and_then(|r| r.rfind(')').map(|i| &r[..i]))
    else {
        return Err(format!(
            "malformed malleus-lint pragma: expected `allow(MLnnn, reason = \"...\")`, found `{rest}`"
        ));
    };

    let (codes_part, reason_part) = match inner.find("reason") {
        Some(i) => (
            inner[..i].trim().trim_end_matches(',').trim(),
            Some(inner[i + "reason".len()..].trim()),
        ),
        None => (inner.trim(), None),
    };

    let mut codes = Vec::new();
    for code in codes_part.split(',') {
        let code = code.trim();
        if code.is_empty() {
            continue;
        }
        let valid = code.len() == 5
            && code.starts_with("ML")
            && code[2..].chars().all(|c| c.is_ascii_digit());
        if !valid {
            return Err(format!(
                "allow pragma names invalid diagnostic code `{code}`"
            ));
        }
        codes.push(code.to_string());
    }
    if codes.is_empty() {
        return Err("allow pragma names no diagnostic codes".into());
    }

    let Some(reason) = reason_part else {
        return Err(format!(
            "allow({}) is missing the mandatory `reason = \"...\"` clause",
            codes.join(", ")
        ));
    };
    let reason = reason.trim_start_matches('=').trim();
    let quoted = reason.len() >= 2 && reason.starts_with('"') && reason.ends_with('"');
    if !quoted || reason.trim_matches('"').trim().is_empty() {
        return Err(format!(
            "allow({}) has an empty or unquoted reason; suppressions must say why",
            codes.join(", ")
        ));
    }
    Ok(codes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    #[test]
    fn trailing_pragma_targets_its_own_line() {
        let l = lex("let t = now(); // malleus-lint: allow(ML004, reason = \"timing only\")\n");
        let (allows, errors) = parse_pragmas(&l);
        assert!(errors.is_empty(), "{errors:?}");
        assert_eq!(allows.len(), 1);
        assert_eq!(allows[0].target_line, 1);
        assert_eq!(allows[0].codes, ["ML004"]);
    }

    #[test]
    fn standalone_pragma_targets_next_code_line() {
        let src = "// malleus-lint: allow(ML003, reason = \"sentinel compare\")\n\n// other\nlet x = a == b;\n";
        let (allows, errors) = parse_pragmas(&lex(src));
        assert!(errors.is_empty());
        assert_eq!(allows[0].target_line, 4);
    }

    #[test]
    fn missing_reason_is_an_error() {
        let (allows, errors) = parse_pragmas(&lex("// malleus-lint: allow(ML001)\nlet x = 1;\n"));
        assert!(allows.is_empty());
        assert_eq!(errors.len(), 1);
        assert!(errors[0].message.contains("reason"));
    }

    #[test]
    fn empty_reason_is_an_error() {
        let src = "// malleus-lint: allow(ML002, reason = \"  \")\nlet x = 1;\n";
        let (allows, errors) = parse_pragmas(&lex(src));
        assert!(allows.is_empty());
        assert_eq!(errors.len(), 1);
    }

    #[test]
    fn multiple_codes_parse() {
        let src = "// malleus-lint: allow(ML002, ML003, reason = \"fixture\")\nlet x = 1;\n";
        let (allows, errors) = parse_pragmas(&lex(src));
        assert!(errors.is_empty());
        assert_eq!(allows[0].codes, ["ML002", "ML003"]);
    }
}
