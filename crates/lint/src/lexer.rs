//! A hand-rolled Rust lexer: just enough tokenization for project lints.
//!
//! The lexer understands everything that can *hide* code from a naive text
//! scan — line and (nested) block comments, string literals, raw strings
//! (`r#".."#`), byte strings, char literals, and the char-vs-lifetime
//! ambiguity — and splits the rest into identifier / number / punctuation
//! tokens with line numbers.  It deliberately does not build a syntax tree:
//! every diagnostic works on the token stream plus shallow structure
//! (brace/paren depth), which keeps the pass dependency-free and fast.

/// Token classification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (`fn`, `struct`, `unwrap`, ...).
    Ident,
    /// Numeric literal, including floats and exponents (`42`, `1.05`, `1e-12`).
    Number,
    /// String literal of any flavor (`"..."`, `r#"..."#`, `b"..."`).
    Str,
    /// Char or byte literal (`'a'`, `b'\n'`).
    Char,
    /// Lifetime (`'a`, `'static`).
    Lifetime,
    /// Punctuation; multi-char operators the lints care about (`==`, `!=`,
    /// `::`, `->`, `=>`, `..`, `..=`, `&&`, `||`) arrive as one token.
    Punct,
}

/// One lexed token.
#[derive(Debug, Clone)]
pub struct Token {
    pub kind: TokenKind,
    pub text: String,
    pub line: u32,
}

/// One comment (line or block), kept separate from the code token stream so
/// rules never match inside comments while the pragma parser still sees them.
#[derive(Debug, Clone)]
pub struct Comment {
    pub text: String,
    pub line: u32,
}

/// The result of lexing one source file.
#[derive(Debug, Default)]
pub struct Lexed {
    pub tokens: Vec<Token>,
    pub comments: Vec<Comment>,
}

/// Operators combined into a single token, longest first.
const COMBINED: &[&str] = &["..=", "::", "==", "!=", "->", "=>", "..", "&&", "||"];

pub fn lex(source: &str) -> Lexed {
    let chars: Vec<char> = source.chars().collect();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line = 1u32;

    let is_ident_start = |c: char| c.is_alphabetic() || c == '_';
    let is_ident = |c: char| c.is_alphanumeric() || c == '_';

    while i < chars.len() {
        let c = chars[i];

        if c == '\n' {
            line += 1;
            i += 1;
            continue;
        }
        if c.is_whitespace() {
            i += 1;
            continue;
        }

        // Line comment.
        if c == '/' && chars.get(i + 1) == Some(&'/') {
            let start = i;
            while i < chars.len() && chars[i] != '\n' {
                i += 1;
            }
            out.comments.push(Comment {
                text: chars[start..i].iter().collect(),
                line,
            });
            continue;
        }

        // Block comment (Rust block comments nest).
        if c == '/' && chars.get(i + 1) == Some(&'*') {
            let start = i;
            let start_line = line;
            let mut depth = 1usize;
            i += 2;
            while i < chars.len() && depth > 0 {
                if chars[i] == '\n' {
                    line += 1;
                    i += 1;
                } else if chars[i] == '/' && chars.get(i + 1) == Some(&'*') {
                    depth += 1;
                    i += 2;
                } else if chars[i] == '*' && chars.get(i + 1) == Some(&'/') {
                    depth -= 1;
                    i += 2;
                } else {
                    i += 1;
                }
            }
            out.comments.push(Comment {
                text: chars[start..i].iter().collect(),
                line: start_line,
            });
            continue;
        }

        // Raw / byte string prefixes: r", r#, b", br", br#, rb is invalid.
        if (c == 'r' || c == 'b') && raw_or_byte_string_start(&chars, i) {
            let (token, consumed, newlines) = lex_prefixed_string(&chars, i);
            out.tokens.push(Token {
                kind: token,
                text: chars[i..i + consumed].iter().collect(),
                line,
            });
            line += newlines;
            i += consumed;
            continue;
        }

        // Byte char literal b'x'.
        if c == 'b' && chars.get(i + 1) == Some(&'\'') {
            let (consumed, newlines) = lex_char_body(&chars, i + 1);
            out.tokens.push(Token {
                kind: TokenKind::Char,
                text: chars[i..i + 1 + consumed].iter().collect(),
                line,
            });
            line += newlines;
            i += 1 + consumed;
            continue;
        }

        if is_ident_start(c) {
            let start = i;
            while i < chars.len() && is_ident(chars[i]) {
                i += 1;
            }
            out.tokens.push(Token {
                kind: TokenKind::Ident,
                text: chars[start..i].iter().collect(),
                line,
            });
            continue;
        }

        if c.is_ascii_digit() {
            let start = i;
            while i < chars.len() && (is_ident(chars[i])) {
                // Exponent sign: `1e-12`, `2.5E+7`.
                if (chars[i] == 'e' || chars[i] == 'E')
                    && !chars[start..i].iter().collect::<String>().starts_with("0x")
                    && matches!(chars.get(i + 1), Some('+') | Some('-'))
                    && chars.get(i + 2).is_some_and(|d| d.is_ascii_digit())
                {
                    i += 2;
                    continue;
                }
                i += 1;
            }
            // Fractional part — but not the `..` of a range and not a method
            // call / tuple access on a literal (`1.max(2)`, `pair.0`).
            if i < chars.len()
                && chars[i] == '.'
                && chars.get(i + 1).is_some_and(|d| d.is_ascii_digit())
            {
                i += 1;
                while i < chars.len() && is_ident(chars[i]) {
                    if (chars[i] == 'e' || chars[i] == 'E')
                        && matches!(chars.get(i + 1), Some('+') | Some('-'))
                        && chars.get(i + 2).is_some_and(|d| d.is_ascii_digit())
                    {
                        i += 2;
                        continue;
                    }
                    i += 1;
                }
            }
            out.tokens.push(Token {
                kind: TokenKind::Number,
                text: chars[start..i].iter().collect(),
                line,
            });
            continue;
        }

        // Plain string literal.
        if c == '"' {
            let start = i;
            let start_line = line;
            i += 1;
            while i < chars.len() {
                match chars[i] {
                    '\\' => i += 2,
                    '\n' => {
                        line += 1;
                        i += 1;
                    }
                    '"' => {
                        i += 1;
                        break;
                    }
                    _ => i += 1,
                }
            }
            out.tokens.push(Token {
                kind: TokenKind::Str,
                text: chars[start..i.min(chars.len())].iter().collect(),
                line: start_line,
            });
            continue;
        }

        // Char literal vs lifetime.
        if c == '\'' {
            // Lifetime: '<ident-start> not immediately closed by '.
            let next = chars.get(i + 1).copied();
            let after = chars.get(i + 2).copied();
            let is_lifetime = next.is_some_and(is_ident_start) && after != Some('\'');
            if is_lifetime {
                let start = i;
                i += 1;
                while i < chars.len() && is_ident(chars[i]) {
                    i += 1;
                }
                out.tokens.push(Token {
                    kind: TokenKind::Lifetime,
                    text: chars[start..i].iter().collect(),
                    line,
                });
            } else {
                let (consumed, newlines) = lex_char_body(&chars, i);
                out.tokens.push(Token {
                    kind: TokenKind::Char,
                    text: chars[i..i + consumed].iter().collect(),
                    line,
                });
                line += newlines;
                i += consumed;
            }
            continue;
        }

        // Combined operators, longest match first.
        let mut matched = false;
        for op in COMBINED {
            let oplen = op.chars().count();
            if chars[i..].len() >= oplen && chars[i..i + oplen].iter().collect::<String>() == **op {
                out.tokens.push(Token {
                    kind: TokenKind::Punct,
                    text: (*op).to_string(),
                    line,
                });
                i += oplen;
                matched = true;
                break;
            }
        }
        if matched {
            continue;
        }

        out.tokens.push(Token {
            kind: TokenKind::Punct,
            text: c.to_string(),
            line,
        });
        i += 1;
    }

    out
}

/// Does a raw/byte string start at `i` (which holds 'r' or 'b')?
fn raw_or_byte_string_start(chars: &[char], i: usize) -> bool {
    match chars[i] {
        'r' => match chars.get(i + 1) {
            Some('"') => true,
            Some('#') => {
                // r## ... " — any number of hashes then a quote.
                let mut j = i + 1;
                while chars.get(j) == Some(&'#') {
                    j += 1;
                }
                chars.get(j) == Some(&'"')
            }
            _ => false,
        },
        'b' => match chars.get(i + 1) {
            Some('"') => true,
            Some('r') => raw_or_byte_string_start(chars, i + 1),
            _ => false,
        },
        _ => false,
    }
}

/// Lex a string starting with an `r` / `b` / `br` prefix at `i`.
/// Returns (kind, chars consumed, newlines crossed).
fn lex_prefixed_string(chars: &[char], i: usize) -> (TokenKind, usize, u32) {
    let mut j = i;
    while matches!(chars.get(j), Some('r') | Some('b')) {
        j += 1;
    }
    let raw = chars[i..j].contains(&'r');
    let mut hashes = 0usize;
    while chars.get(j) == Some(&'#') {
        hashes += 1;
        j += 1;
    }
    debug_assert_eq!(chars.get(j), Some(&'"'));
    j += 1; // opening quote
    let mut newlines = 0u32;
    while j < chars.len() {
        match chars[j] {
            '\n' => {
                newlines += 1;
                j += 1;
            }
            '\\' if !raw => j += 2,
            '"' => {
                // A raw string needs `hashes` trailing #s to close.
                let mut k = j + 1;
                let mut seen = 0usize;
                while seen < hashes && chars.get(k) == Some(&'#') {
                    seen += 1;
                    k += 1;
                }
                if seen == hashes {
                    return (TokenKind::Str, k - i, newlines);
                }
                j += 1;
            }
            _ => j += 1,
        }
    }
    (TokenKind::Str, j - i, newlines)
}

/// Lex a char literal starting at the opening quote `i`.
/// Returns (chars consumed, newlines crossed).
fn lex_char_body(chars: &[char], i: usize) -> (usize, u32) {
    let mut j = i + 1;
    while j < chars.len() {
        match chars[j] {
            '\\' => j += 2,
            '\'' => return (j + 1 - i, 0),
            _ => j += 1,
        }
    }
    (j - i, 0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn texts(src: &str) -> Vec<String> {
        lex(src).tokens.into_iter().map(|t| t.text).collect()
    }

    #[test]
    fn comments_are_not_code_tokens() {
        let l = lex("a // unwrap() here\n/* panic! *//*/* nested */*/ b");
        let toks: Vec<&str> = l.tokens.iter().map(|t| t.text.as_str()).collect();
        assert_eq!(toks, ["a", "b"]);
        assert_eq!(l.comments.len(), 3);
    }

    #[test]
    fn strings_swallow_operators_and_braces() {
        assert_eq!(
            texts(r#"let s = "a == { b"; x"#),
            ["let", "s", "=", "\"a == { b\"", ";", "x"]
        );
    }

    #[test]
    fn raw_strings_with_hashes() {
        let src = "r#\"embedded \" quote\"# y";
        let t = texts(src);
        assert_eq!(t.last().map(String::as_str), Some("y"));
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn char_vs_lifetime() {
        let l = lex("'a' 'static x '\\n'");
        let kinds: Vec<TokenKind> = l.tokens.iter().map(|t| t.kind).collect();
        assert_eq!(
            kinds,
            [
                TokenKind::Char,
                TokenKind::Lifetime,
                TokenKind::Ident,
                TokenKind::Char
            ]
        );
    }

    #[test]
    fn float_and_exponent_literals() {
        let l = lex("1.05 1e-12 0x1f 7 ..");
        let kinds: Vec<(TokenKind, String)> =
            l.tokens.into_iter().map(|t| (t.kind, t.text)).collect();
        assert_eq!(kinds[0], (TokenKind::Number, "1.05".into()));
        assert_eq!(kinds[1], (TokenKind::Number, "1e-12".into()));
        assert_eq!(kinds[2], (TokenKind::Number, "0x1f".into()));
        assert_eq!(kinds[3], (TokenKind::Number, "7".into()));
        assert_eq!(kinds[4], (TokenKind::Punct, "..".into()));
    }

    #[test]
    fn ranges_do_not_merge_into_floats() {
        assert_eq!(texts("0..10"), ["0", "..", "10"]);
        assert_eq!(texts("a[..4]"), ["a", "[", "..", "4", "]"]);
    }

    #[test]
    fn combined_operators() {
        assert_eq!(
            texts("a == b != c :: d -> e => f"),
            ["a", "==", "b", "!=", "c", "::", "d", "->", "e", "=>", "f"]
        );
    }

    #[test]
    fn line_numbers_track_newlines() {
        let l = lex("a\nb\n\"multi\nline\"\nc");
        let c = l.tokens.iter().find(|t| t.text == "c").unwrap();
        assert_eq!(c.line, 5);
    }
}
