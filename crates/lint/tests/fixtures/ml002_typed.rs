// ML002 negative fixture: typed errors, literal indexing, and Option
// handling. Zero findings expected.

enum WireError {
    Truncated,
    BadMagic,
}

fn decode(buf: &[u8], idx: usize) -> Result<u8, WireError> {
    if buf.len() < 4 {
        return Err(WireError::Truncated);
    }
    let magic = buf[0]; // literal index: provably in bounds after the check
    if magic != 0x4d {
        return Err(WireError::BadMagic);
    }
    buf.get(idx).copied().ok_or(WireError::Truncated)
}
