// ML003 positive fixture: IEEE comparison and hashing of float state.

struct Outcome {
    step_time: f64,
}

fn same(a: &Outcome, b: &Outcome) -> bool {
    a.step_time == b.step_time // finding: float ==
}

fn drifted(a: &Outcome) -> bool {
    a.step_time != 1.05 // finding: float != against a literal
}

fn key(a: &Outcome, state: &mut Hasher) {
    a.step_time.hash(state); // finding: float hash
}
