// ML001 negative fixture: same locks as ml001_inverted.rs, acquired in
// manifest rank order (gate 10 before table 20). Zero findings expected.

use std::sync::{Condvar, Mutex, MutexGuard, PoisonError};

fn lock_or_poisoned<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

struct AdmissionGate {
    state: Mutex<u32>,
    freed: Condvar,
}

struct InFlightTable {
    slots: Mutex<u32>,
}

struct Server {
    gate: AdmissionGate,
    table: InFlightTable,
}

impl Server {
    fn serve(&self) {
        let state = lock_or_poisoned(&self.gate.state);
        let slots = lock_or_poisoned(&self.table.slots);
        drop(slots);
        drop(state);
    }
}
