// ML004 positive fixture: wall-clock and entropy inside scoring code.

fn score(candidates: &[u64]) -> u64 {
    let started = Instant::now(); // finding: wall-clock
    let stamp = SystemTime::now(); // finding: wall-clock
    let mut rng = thread_rng(); // finding: entropy-seeded RNG
    candidates.len() as u64
}
