// ML001 positive fixture: the PR-5 admission-starvation shape, inverted.
// The gate (rank 10) must be acquired before the in-flight table (rank 20);
// this file takes the table first, then blocks on the gate — the exact
// hold-and-wait that starved admission before the FIFO fix.

use std::sync::{Condvar, Mutex, MutexGuard, PoisonError};

fn lock_or_poisoned<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

struct AdmissionGate {
    state: Mutex<u32>,
    freed: Condvar,
}

struct InFlightTable {
    slots: Mutex<u32>,
}

struct Server {
    gate: AdmissionGate,
    table: InFlightTable,
}

impl Server {
    fn serve(&self) {
        let slots = lock_or_poisoned(&self.table.slots);
        let state = lock_or_poisoned(&self.gate.state);
        drop(state);
        drop(slots);
    }
}
