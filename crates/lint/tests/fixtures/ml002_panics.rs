// ML002 positive fixture: every panic-path shape the rule must catch.

fn decode(buf: &[u8], idx: usize) -> u8 {
    let first = buf.first().copied().unwrap(); // finding: unwrap
    let second = buf.get(1).copied().expect("short frame"); // finding: expect
    if first == 0 {
        panic!("zero magic"); // finding: panic!
    }
    let third = buf[idx]; // finding: computed index
    first + second + third
}
