// ML003 negative fixture: byte-identity comparisons through to_bits().
// Zero findings expected.

struct Outcome {
    step_time: f64,
    dp: u32,
}

fn same(a: &Outcome, b: &Outcome) -> bool {
    a.step_time.to_bits() == b.step_time.to_bits() && a.dp == b.dp
}

fn key(a: &Outcome, state: &mut Hasher) {
    a.step_time.to_bits().hash(state);
}
