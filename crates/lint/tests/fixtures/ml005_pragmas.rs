// ML005 fixture: one well-formed pragma (suppresses its ML004 finding) and
// one reason-less pragma (ML005 finding; suppresses nothing).
// Expected: exactly one ML005 and one ML004 (from the second site).

fn observe() -> Instant {
    // malleus-lint: allow(ML004, reason = "observability timestamp, never fed to scoring")
    Instant::now()
}

fn leak() -> Instant {
    // malleus-lint: allow(ML004)
    Instant::now()
}
