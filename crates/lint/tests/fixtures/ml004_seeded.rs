// ML004 negative fixture: deterministic seed-threaded randomness and
// durations computed from caller-supplied instants. Zero findings expected.

fn score(candidates: &[u64], seed: u64, t0: Instant) -> u64 {
    let mut rng = StdRng::seed_from_u64(seed);
    let elapsed = t0.elapsed();
    candidates.len() as u64 + rng.next_u64()
}
