//! Fixture self-tests: each fixture under `tests/fixtures/` must produce
//! exactly the expected diagnostic codes, so every rule has a pinned
//! positive and negative example that fails loudly if a heuristic drifts.

use malleus_lint::{manifest, run_source, Finding};

/// Manifest used by the ML001 fixtures: the admission/coalesce rank shape
/// from the real lock_order.toml, plus the poisoned-lock helper.
const FIXTURE_MANIFEST: &str = r#"
[ranks]
"AdmissionGate.state" = 10
"InFlightTable.slots" = 20

[condvars]
"AdmissionGate.freed" = "AdmissionGate.state"

[lock_fns]
lock_or_poisoned = "lock"
"#;

fn check(name: &str, source: &str, manifest_text: &str, expected_codes: &[&str]) {
    let m = manifest::parse(manifest_text).expect("fixture manifest parses");
    let findings: Vec<Finding> = run_source(name, source, &m);
    let codes: Vec<&str> = findings.iter().map(|f| f.code.as_str()).collect();
    assert_eq!(
        codes, expected_codes,
        "fixture {name} produced unexpected findings: {findings:#?}"
    );
}

#[test]
fn ml001_inverted_acquisition_is_flagged() {
    let src = include_str!("fixtures/ml001_inverted.rs");
    check("ml001_inverted.rs", src, FIXTURE_MANIFEST, &["ML001"]);
    // And the finding is the rank inversion, not a coverage gap.
    let m = manifest::parse(FIXTURE_MANIFEST).unwrap();
    let findings = run_source("ml001_inverted.rs", src, &m);
    assert!(findings[0].message.contains("strictly increase"));
    assert!(findings[0].message.contains("AdmissionGate.state"));
}

#[test]
fn ml001_ordered_acquisition_is_clean() {
    check(
        "ml001_ordered.rs",
        include_str!("fixtures/ml001_ordered.rs"),
        FIXTURE_MANIFEST,
        &[],
    );
}

#[test]
fn ml002_panic_paths_are_flagged() {
    check(
        "ml002_panics.rs",
        include_str!("fixtures/ml002_panics.rs"),
        "",
        &["ML002", "ML002", "ML002", "ML002"],
    );
}

#[test]
fn ml002_typed_errors_are_clean() {
    check(
        "ml002_typed.rs",
        include_str!("fixtures/ml002_typed.rs"),
        "",
        &[],
    );
}

#[test]
fn ml003_float_identity_breaks_are_flagged() {
    check(
        "ml003_float_eq.rs",
        include_str!("fixtures/ml003_float_eq.rs"),
        "",
        &["ML003", "ML003", "ML003"],
    );
}

#[test]
fn ml003_to_bits_comparisons_are_clean() {
    check(
        "ml003_to_bits.rs",
        include_str!("fixtures/ml003_to_bits.rs"),
        "",
        &[],
    );
}

#[test]
fn ml004_nondeterminism_sources_are_flagged() {
    check(
        "ml004_wallclock.rs",
        include_str!("fixtures/ml004_wallclock.rs"),
        "",
        &["ML004", "ML004", "ML004"],
    );
}

#[test]
fn ml004_seeded_randomness_is_clean() {
    check(
        "ml004_seeded.rs",
        include_str!("fixtures/ml004_seeded.rs"),
        "",
        &[],
    );
}

#[test]
fn ml005_reasoned_pragma_suppresses_and_reasonless_is_flagged() {
    let src = include_str!("fixtures/ml005_pragmas.rs");
    check("ml005_pragmas.rs", src, "", &["ML005", "ML004"]);
    let m = manifest::parse("").unwrap();
    let findings = run_source("ml005_pragmas.rs", src, &m);
    assert!(findings[0].message.contains("reason"));
}
