//! **malleus** — a from-scratch Rust reproduction of
//! *"Malleus: Straggler-Resilient Hybrid Parallel Training of Large-scale
//! Models via Malleable Data and Model Parallelization"* (SIGMOD 2025).
//!
//! This facade crate re-exports the workspace crates and provides a small
//! [`prelude`] so the examples and downstream users can pull in the whole stack
//! with one import:
//!
//! ```
//! use malleus::prelude::*;
//!
//! // 32 GPUs (4 nodes × 8), one heavy straggler on GPU 0.
//! let mut cluster = Cluster::homogeneous(4, 8);
//! cluster.set_rate(GpuId(0), StragglerLevel::Level3.rate());
//!
//! // Profile the 32B model on A800-class hardware and plan.
//! let coeffs = ProfiledCoefficients::derive(
//!     ModelSpec::llama2_32b(),
//!     HardwareParams::a800_cluster(),
//! );
//! let planner = Planner::new(coeffs.clone(), PlannerConfig::default());
//! let outcome = planner.plan(&cluster.snapshot()).expect("feasible plan");
//!
//! // Execute one simulated training step with the adapted plan.
//! let report = simulate_step(&coeffs, &outcome.plan, &cluster.snapshot()).unwrap();
//! assert!(report.step_time > 0.0);
//! ```
//!
//! Crate map:
//!
//! | crate | contents |
//! |---|---|
//! | [`solver`] | exact min-max ILP and pipeline-division (MINLP) solvers |
//! | [`model`] | LLM architecture specs, memory/compute models, profiled coefficients |
//! | [`cluster`] | simulated GPU cluster, straggler levels, S1–S6 traces |
//! | [`core`] | the Malleus planner (grouping, orchestration, assignment, migration) |
//! | [`sim`] | 1F1B / ZeRO training-step simulator, migration & restart costs |
//! | [`runtime`] | profiler, executor, asynchronous re-planning, training sessions |
//! | [`service`] | multi-tenant planning service: sharded plan cache, coalescing, socket daemon |
//! | [`wire`] | hand-rolled length-prefixed binary codec for the standalone plan server |
//! | [`baselines`] | Megatron-LM, DeepSpeed, restart variants, Oobleck, theoretic optimum |

pub use malleus_baselines as baselines;
pub use malleus_cluster as cluster;
pub use malleus_core as core;
pub use malleus_model as model;
pub use malleus_runtime as runtime;
pub use malleus_service as service;
pub use malleus_sim as sim;
pub use malleus_solver as solver;
pub use malleus_wire as wire;

/// Commonly used types, re-exported for convenience.
pub mod prelude {
    pub use malleus_baselines::{
        baseline_constructors, gap_from_optimum, theoretic_optimal_time, DeepSpeedPlanner,
        MegatronPlanner, OobleckPlanner, RestartFamily, RestartPlanner,
    };
    pub use malleus_cluster::{
        Cluster, ClusterSnapshot, GpuId, PaperSituation, Situation, StragglerEvent, StragglerLevel,
        Trace, TracePhase,
    };
    pub use malleus_core::{
        incremental_from_env_or, plan_migration, BackendId, ClusterEvent, CostModel, Parallelism,
        ParallelizationPlan, PlanBackend, PlanError, PlanOutcome, PlannedOutcome, Planner,
        PlannerConfig, ScoredLattice, INCREMENTAL_ENV,
    };
    pub use malleus_model::{HardwareParams, ModelSpec, ProfiledCoefficients};
    pub use malleus_runtime::{
        replan_overlapped_backend, replan_overlapped_incremental, replan_overlapped_shared,
        BackendReplan, Executor, Profiler, SessionReport, TrainingSession,
    };
    pub use malleus_service::{
        BackendMetrics, ClientConfig, KeyedRequest, L1Stats, PlanClient, PlanRequest, PlanServer,
        PlanService, PlanTransport, ServerConfig, ServiceConfig, ServiceError, ServiceMetrics,
    };
    pub use malleus_sim::{
        migration_time, restart_time, simulate_step, simulate_zero3_step, StepReport,
        TrainingSimulator, Zero3Config,
    };
    pub use malleus_solver::{divide_pipelines, solve_minmax_allocation, DivisionProblem};
    pub use malleus_wire::{Wire, WireError};
}
