//! Tier-1 gate: `malleus-lint --workspace` must report zero findings.
//!
//! This keeps the concurrency and byte-identity invariants (lock ordering,
//! panic-free serving paths, bitwise float comparisons, deterministic
//! scoring) enforced by `cargo test -q`, not just by the CI lint job — a
//! regression in any of them fails the suite with the exact diagnostic.

use std::path::Path;

#[test]
fn workspace_has_zero_lint_findings() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let report = malleus_lint::run_workspace(root, None).expect("lint scan runs");
    assert!(
        report.files_scanned > 50,
        "suspiciously few files scanned ({}); did the source walk break?",
        report.files_scanned
    );
    let rendered: Vec<String> = report.findings.iter().map(|f| f.render()).collect();
    assert!(
        report.findings.is_empty(),
        "malleus-lint found {} violation(s):\n{}",
        report.findings.len(),
        rendered.join("\n")
    );
}
