//! Deterministic-equivalence harness for the parallel candidate-lattice
//! planner.
//!
//! The serial path (`Parallelism::Fixed(1)`) is the reference oracle; the
//! parallel path must return **byte-identical** plans — same
//! `ParallelizationPlan`, same chosen TP/DP, bit-equal cost estimates — for
//! every golden workload (32B/70B/110B) under every paper straggler situation
//! S1–S6.  CI runs this suite with a matrix of `MALLEUS_PLANNER_PARALLELISM`
//! (`1`, `auto`) × `MALLEUS_PLANNER_INCREMENTAL` (`0`, `1`); without the
//! overrides the candidate path is pinned to 4 workers so the fan-out is
//! exercised even on single-core hosts, and incremental replanning stays at
//! its default (on).
//!
//! The incremental suite below replays every situation against the
//! warm-start delta replanner and demands byte-identity with a fresh
//! `Fixed(1)` full-enumeration oracle — covering transitions from Normal,
//! chained S_i → S_{i+1} transitions, and the recurrent flap back to an
//! already-seen situation (full memo reuse).

mod common;

use malleus::prelude::*;

const SITUATIONS: [PaperSituation; 6] = [
    PaperSituation::S1,
    PaperSituation::S2,
    PaperSituation::S3,
    PaperSituation::S4,
    PaperSituation::S5,
    PaperSituation::S6,
];

/// The worker knob for the candidate side: the CI override if set, else a
/// fixed 4-worker fan-out.
fn candidate_parallelism() -> Parallelism {
    Parallelism::from_env_or(Parallelism::Fixed(4))
}

fn assert_golden_equivalence(spec: ModelSpec, nodes: u32) {
    // The serial side comes from the shared oracle fixture (a binary-scoped
    // service whose worker budget pins execution to `Fixed(1)`), so each
    // oracle plan is computed once per binary however many tests consult it.
    let parallel = common::planner_for(&spec, 64).with_parallelism(candidate_parallelism());
    for situation in SITUATIONS {
        let snapshot = common::snapshot_for(nodes, situation);
        let oracle = common::oracle_planned(&spec, 64, nodes, situation);
        let candidate = parallel
            .plan(&snapshot)
            .unwrap_or_else(|e| panic!("{} parallel under {situation:?}: {e}", spec.name));
        assert_eq!(
            oracle.plan, candidate.plan,
            "{} under {situation:?}: plans diverge",
            spec.name
        );
        assert_eq!(oracle.chosen_tp, candidate.chosen_tp);
        assert_eq!(oracle.dp, candidate.dp);
        assert_eq!(
            oracle.estimated_step_time.to_bits(),
            candidate.estimated_step_time.to_bits(),
            "{} under {situation:?}: exact estimates diverge",
            spec.name
        );
        assert_eq!(
            oracle.estimated_step_time_simplified.to_bits(),
            candidate.estimated_step_time_simplified.to_bits(),
            "{} under {situation:?}: simplified estimates diverge",
            spec.name
        );
    }
}

#[test]
fn golden_plans_32b_match_serial_oracle_across_all_situations() {
    assert_golden_equivalence(ModelSpec::llama2_32b(), 4);
}

#[test]
fn golden_plans_70b_match_serial_oracle_across_all_situations() {
    assert_golden_equivalence(ModelSpec::llama2_70b(), 8);
}

#[test]
fn golden_plans_110b_match_serial_oracle_across_all_situations() {
    assert_golden_equivalence(ModelSpec::llama2_110b(), 8);
}

#[test]
fn service_plans_are_byte_identical_to_direct_planner() {
    // The multi-tenant planning service must be invisible in the output:
    // uncached (miss) and cached (hit) results byte-identical to a direct
    // `Planner::plan` call — the service only changes who pays for the
    // computation.  The direct reference is the shared serial-oracle plan,
    // which the golden tests above prove bit-equal to every other direct
    // planner configuration.
    let service = PlanService::new(ServiceConfig::default());
    for (spec, nodes, situation) in [
        (ModelSpec::llama2_32b(), 4, PaperSituation::S3),
        (ModelSpec::llama2_70b(), 8, PaperSituation::S2),
    ] {
        let snapshot = common::snapshot_for(nodes, situation);
        let direct = common::oracle_planned(&spec, 64, nodes, situation);
        let request = PlanRequest::new(
            common::coeffs_for(&spec).clone(),
            snapshot,
            common::planner_for(&spec, 64).config,
        );
        let miss = service.plan(&request).expect("service plan (miss)");
        let hit = service.plan(&request).expect("service plan (hit)");
        for outcome in [&miss, &hit] {
            assert_eq!(
                direct.plan, outcome.plan,
                "{} under {situation:?}",
                spec.name
            );
            assert_eq!(direct.chosen_tp, outcome.chosen_tp);
            assert_eq!(direct.dp, outcome.dp);
            assert_eq!(
                direct.estimated_step_time.to_bits(),
                outcome.estimated_step_time.to_bits()
            );
            assert_eq!(
                direct.estimated_step_time_simplified.to_bits(),
                outcome.estimated_step_time_simplified.to_bits()
            );
        }
    }
    let metrics = service.metrics();
    assert_eq!(metrics.planner_invocations, 2);
    assert_eq!(metrics.hits, 2);
    assert!(metrics.hit_rate() > 0.0);
}

#[test]
fn malleus_backend_trait_is_byte_identical_to_direct_planner() {
    // The PlanBackend trait path must be invisible for Malleus: identical
    // `ParallelizationPlan`, bit-equal estimates, for every golden situation.
    let spec = ModelSpec::llama2_32b();
    let planner = common::planner_for(&spec, 64).with_parallelism(candidate_parallelism());
    let config = planner.config.clone();
    for situation in SITUATIONS {
        let snapshot = common::snapshot_for(4, situation);
        let direct = planner
            .plan(&snapshot)
            .unwrap_or_else(|e| panic!("direct under {situation:?}: {e}"));
        let routed = PlanBackend::plan(&planner, &snapshot, &config)
            .unwrap_or_else(|e| panic!("trait under {situation:?}: {e}"));
        assert_eq!(routed.backend, BackendId::Malleus);
        assert_eq!(
            routed.plan.as_ref(),
            Some(&direct.plan),
            "under {situation:?}: plans diverge"
        );
        assert_eq!(
            routed.estimated_step_time.to_bits(),
            direct.estimated_step_time.to_bits()
        );
        let inner = routed.malleus.as_ref().expect("malleus outcome present");
        assert_eq!(
            inner.estimated_step_time_simplified.to_bits(),
            direct.estimated_step_time_simplified.to_bits()
        );
        assert_eq!(inner.chosen_tp, direct.chosen_tp);
        assert_eq!(inner.dp, direct.dp);
    }
}

#[test]
fn service_backend_route_is_byte_identical_to_direct_planner() {
    // `plan_backend(Malleus, ...)` is `plan(...)` with a backend-neutral
    // envelope: the inner outcome must stay byte-identical to the direct
    // planner, and the legacy route must share the same cache entry.
    let service = PlanService::new(ServiceConfig::default());
    let spec = ModelSpec::llama2_32b();
    for situation in [PaperSituation::S1, PaperSituation::S5] {
        let snapshot = common::snapshot_for(4, situation);
        let direct = common::oracle_planned(&spec, 64, 4, situation);
        let request = PlanRequest::new(
            common::coeffs_for(&spec).clone(),
            snapshot,
            common::planner_for(&spec, 64).config,
        );
        let routed = service
            .plan_backend(BackendId::Malleus, &request)
            .expect("backend route");
        let legacy = service.plan(&request).expect("legacy route");
        let inner = routed.malleus.as_ref().expect("malleus outcome present");
        assert!(
            std::sync::Arc::ptr_eq(inner, &legacy),
            "both routes must serve the same cache entry"
        );
        assert_eq!(direct.plan, legacy.plan, "under {situation:?}");
        assert_eq!(
            direct.estimated_step_time.to_bits(),
            legacy.estimated_step_time.to_bits()
        );
        assert_eq!(
            direct.estimated_step_time_simplified.to_bits(),
            legacy.estimated_step_time_simplified.to_bits()
        );
    }
    let metrics = service.metrics();
    assert_eq!(metrics.planner_invocations, 2);
    assert_eq!(metrics.hits, 2);
    let per: Vec<_> = metrics.per_backend.iter().collect();
    assert_eq!(per.len(), 1, "only the Malleus backend saw traffic");
    assert_eq!(per[0].backend, BackendId::Malleus);
    assert_eq!(per[0].requests, 4);
    assert_eq!(per[0].planner_invocations, 2);
}

/// The candidate-side planner for the incremental suite: CI-matrix worker
/// knob plus the CI-matrix incremental knob (default: on).
fn delta_planner(spec: &ModelSpec) -> Planner {
    let mut config = common::planner_for(spec, 64).config;
    config.incremental = incremental_from_env_or(true);
    Planner::new(common::coeffs_for(spec).clone(), config).with_parallelism(candidate_parallelism())
}

fn assert_replay_identity(warm: &PlanOutcome, full: &PlanOutcome, situation: PaperSituation) {
    assert_eq!(warm.plan, full.plan, "under {situation:?}: plans diverge");
    assert_eq!(warm.chosen_tp, full.chosen_tp, "under {situation:?}");
    assert_eq!(warm.dp, full.dp, "under {situation:?}");
    assert_eq!(
        warm.estimated_step_time.to_bits(),
        full.estimated_step_time.to_bits(),
        "under {situation:?}: exact estimates diverge"
    );
    assert_eq!(
        warm.estimated_step_time_simplified.to_bits(),
        full.estimated_step_time_simplified.to_bits(),
        "under {situation:?}: simplified estimates diverge"
    );
}

#[test]
fn incremental_replays_from_normal_match_the_full_enumeration_oracle() {
    // Every S1–S6 replay from the healthy plan: the warm-start delta
    // replanner must be byte-identical to a fresh serial full-enumeration
    // replan, and its lattice must record whether the event was structural.
    let spec = ModelSpec::llama2_32b();
    let delta = delta_planner(&spec);
    let oracle = common::planner_for(&spec, 64).with_parallelism(Parallelism::Fixed(1));
    let base = delta
        .plan(&common::snapshot_for(4, PaperSituation::Normal))
        .expect("healthy base plan");
    for situation in SITUATIONS {
        let snapshot = common::snapshot_for(4, situation);
        let warm = delta
            .replan_delta(&snapshot, &base)
            .unwrap_or_else(|e| panic!("delta replan under {situation:?}: {e}"));
        let full = oracle
            .replan(&snapshot, &base.plan)
            .unwrap_or_else(|e| panic!("oracle replan under {situation:?}: {e}"));
        assert_replay_identity(&warm, &full, situation);
        if let Some(base_lattice) = base.lattice.as_ref() {
            let expect_delta = !base_lattice.structural_change(&snapshot);
            assert_eq!(
                warm.lattice.as_ref().expect("lattice present").delta,
                expect_delta,
                "under {situation:?}: wrong replanning route"
            );
        }
    }
}

#[test]
fn chained_incremental_replays_match_the_oracle_at_every_transition() {
    // Chained replay Normal → S1 → … → S6 → S2 → Normal, threading each
    // outcome (and its lattice) into the next delta replan.  The S2 and
    // Normal revisits recur to already-evaluated rate states, exercising the
    // cross-invocation candidate memo; byte-identity must hold at every hop.
    let spec = ModelSpec::llama2_32b();
    let delta = delta_planner(&spec);
    let oracle = common::planner_for(&spec, 64).with_parallelism(Parallelism::Fixed(1));
    let mut current = delta
        .plan(&common::snapshot_for(4, PaperSituation::Normal))
        .expect("healthy base plan");
    let replay: Vec<PaperSituation> = SITUATIONS
        .iter()
        .copied()
        .chain([PaperSituation::S2, PaperSituation::Normal])
        .collect();
    for situation in replay {
        let snapshot = common::snapshot_for(4, situation);
        let warm = delta
            .replan_delta(&snapshot, &current)
            .unwrap_or_else(|e| panic!("delta replan under {situation:?}: {e}"));
        let full = oracle
            .replan(&snapshot, &current.plan)
            .unwrap_or_else(|e| panic!("oracle replan under {situation:?}: {e}"));
        assert_replay_identity(&warm, &full, situation);
        current = warm;
    }
}

#[test]
fn equivalence_holds_under_failures_and_forced_dp() {
    // Replanning fixes the DP degree; the parallel path must agree with the
    // oracle on the constrained lattice too, including when GPUs fail.
    let spec = ModelSpec::llama2_32b();
    let serial = common::planner_for(&spec, 64).with_parallelism(Parallelism::Fixed(1));
    let parallel = common::planner_for(&spec, 64).with_parallelism(candidate_parallelism());
    let previous = common::healthy_plan_32b();
    let mut cluster = Cluster::homogeneous(4, 8);
    cluster.set_rate(GpuId(0), StragglerLevel::Level3.rate());
    cluster.set_rate(GpuId(13), StragglerLevel::Failed.rate());
    let snapshot = cluster.snapshot();
    let a = serial
        .replan(&snapshot, &previous.plan)
        .expect("serial replan");
    let b = parallel
        .replan(&snapshot, &previous.plan)
        .expect("parallel replan");
    assert_eq!(a.plan, b.plan);
    assert_eq!(a.dp, b.dp);
    assert_eq!(
        a.estimated_step_time.to_bits(),
        b.estimated_step_time.to_bits()
    );
}
