//! Integration tests of end-to-end sessions and the baseline comparisons
//! (the claims behind Figure 7, Table 2 and Figure 8).

mod common;

use malleus::baselines::{
    restart::RestartFamily, DeepSpeedPlanner, MegatronPlanner, OobleckPlanner, RestartPlanner,
};
use malleus::prelude::*;

fn coeffs_32b() -> ProfiledCoefficients {
    common::coeffs_32b().clone()
}

fn snapshot_for(situation: PaperSituation) -> ClusterSnapshot {
    common::snapshot_for(4, situation)
}

#[test]
fn full_paper_trace_session_stays_close_to_normal_throughput() {
    let cluster = Cluster::homogeneous(4, 8);
    let trace = Trace::paper_trace(&cluster, 10);
    let mut session = TrainingSession::new(coeffs_32b(), PlannerConfig::default(), cluster);
    let report = session.run(&trace).expect("session");
    assert_eq!(report.phases.len(), 8);
    let normal = report.phases[0].step_time;
    for phase in &report.phases[1..7] {
        // The paper: Malleus degrades by at most ~1.35x even under S5; allow 2x.
        assert!(
            phase.step_time < normal * 2.0,
            "{}: {} vs normal {normal}",
            phase.situation,
            phase.step_time
        );
        // Migration, when it happens, stays in the seconds range, far below a
        // checkpoint restart.
        assert!(phase.migration_time < 60.0);
        assert_eq!(phase.restart_time, 0.0);
    }
    // The trace ends healthy again: throughput recovers.
    let last = report.phases.last().unwrap();
    assert!((last.step_time - normal).abs() / normal < 0.15);
}

#[test]
fn malleus_outperforms_megatron_and_deepspeed_in_every_straggled_situation() {
    let coeffs = coeffs_32b();
    let all_gpus: Vec<GpuId> = (0..32).map(GpuId).collect();
    let planner = Planner::new(coeffs.clone(), PlannerConfig::default());
    let megatron = MegatronPlanner::new(coeffs.clone(), 64, 8);
    let (mega_cfg, mega_plan, _) = megatron.search(&all_gpus).unwrap();
    let deepspeed = DeepSpeedPlanner::new(coeffs.clone(), 64);
    let healthy = snapshot_for(PaperSituation::Normal);
    let (ds_cfg, _) = deepspeed.search(&healthy, &all_gpus).unwrap();

    for situation in [
        PaperSituation::S1,
        PaperSituation::S2,
        PaperSituation::S3,
        PaperSituation::S4,
        PaperSituation::S5,
        PaperSituation::S6,
    ] {
        let snapshot = snapshot_for(situation);
        let malleus_plan = planner.plan(&snapshot).unwrap().plan;
        let malleus_time = simulate_step(&coeffs, &malleus_plan, &snapshot)
            .unwrap()
            .step_time;
        let mega_time = megatron
            .simulate_step(&mega_plan, &snapshot, mega_cfg.activation_checkpointing)
            .unwrap();
        let ds_time = deepspeed
            .simulate_step(&snapshot, &all_gpus, &ds_cfg)
            .unwrap();
        assert!(
            mega_time > malleus_time * 1.5,
            "{situation:?}: Megatron {mega_time} vs Malleus {malleus_time}"
        );
        assert!(
            ds_time > malleus_time * 1.5,
            "{situation:?}: DeepSpeed {ds_time} vs Malleus {malleus_time}"
        );
    }
}

#[test]
fn malleus_beats_restart_baselines_without_paying_restart_costs() {
    let coeffs = coeffs_32b();
    let planner = Planner::new(coeffs.clone(), PlannerConfig::default());
    let restart = RestartPlanner::new(RestartFamily::Megatron, coeffs.clone(), 64, 8);
    // S4 removes three of the four nodes: the restart baseline keeps only 8
    // GPUs while Malleus keeps using the healthy GPUs of straggling nodes.
    let snapshot = snapshot_for(PaperSituation::S4);
    let malleus_plan = planner.plan(&snapshot).unwrap().plan;
    let malleus_time = simulate_step(&coeffs, &malleus_plan, &snapshot)
        .unwrap()
        .step_time;
    let outcome = restart
        .handle_situation(&snapshot, Some(&[0, 1, 2, 3]))
        .unwrap();
    assert!(outcome.restarted);
    assert!(outcome.restart_cost > 60.0);
    assert!(
        outcome.step_time > malleus_time,
        "restart {} vs malleus {malleus_time}",
        outcome.step_time
    );
}

#[test]
fn oobleck_is_consistently_slower_and_restarts_where_the_paper_says() {
    let coeffs = coeffs_32b();
    let oobleck = OobleckPlanner::new(coeffs.clone(), 64, 8);
    let planner = Planner::new(coeffs.clone(), PlannerConfig::default());
    let mut prev_nodes: Vec<u32> = vec![0, 1, 2, 3];
    let mut restarts = Vec::new();
    for situation in [
        PaperSituation::S1,
        PaperSituation::S2,
        PaperSituation::S3,
        PaperSituation::S4,
        PaperSituation::S5,
        PaperSituation::S6,
        PaperSituation::Normal,
    ] {
        let snapshot = snapshot_for(situation);
        let outcome = oobleck.handle_situation(&snapshot, &prev_nodes, 4).unwrap();
        let malleus_plan = planner.plan(&snapshot).unwrap().plan;
        let malleus_time = simulate_step(&coeffs, &malleus_plan, &snapshot)
            .unwrap()
            .step_time;
        assert!(
            outcome.step_time > malleus_time * 1.5,
            "{situation:?}: Oobleck {} vs Malleus {malleus_time}",
            outcome.step_time
        );
        restarts.push(matches!(
            outcome.transition,
            malleus::baselines::OobleckTransition::Restarted
        ));
        prev_nodes = outcome.nodes_used;
    }
    // Figure 8: transitions into S4, S5, S6 and back to Normal need restarts.
    assert_eq!(restarts, vec![false, false, false, true, true, true, true]);
}

#[test]
fn profiler_driven_session_matches_direct_planning() {
    // The session (profiler estimates rates from measurements) must land on
    // plans of the same quality as planning directly from the true rates.
    let cluster = Cluster::homogeneous(4, 8);
    let trace = Trace {
        phases: vec![
            TracePhase {
                situation: Situation::normal(),
                iterations: 3,
            },
            TracePhase {
                situation: PaperSituation::S3.situation(&cluster),
                iterations: 3,
            },
        ],
    };
    let mut session = TrainingSession::new(coeffs_32b(), PlannerConfig::default(), cluster);
    let report = session.run(&trace).unwrap();
    let coeffs = coeffs_32b();
    let planner = Planner::new(coeffs.clone(), PlannerConfig::default());
    let snapshot = snapshot_for(PaperSituation::S3);
    let direct = simulate_step(&coeffs, &planner.plan(&snapshot).unwrap().plan, &snapshot)
        .unwrap()
        .step_time;
    let via_session = report.phases[1].step_time;
    assert!(
        (via_session - direct).abs() / direct < 0.10,
        "session {via_session} vs direct {direct}"
    );
}
