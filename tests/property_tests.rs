//! Cross-crate property-based tests on the planner, grouping and migration
//! invariants, driven by randomly generated straggler situations.

mod common;

use malleus::core::grouping::group_cluster;
use malleus::prelude::*;
use proptest::prelude::*;

/// A random straggler situation on a 4-node × 8-GPU cluster.
fn arb_rates() -> impl Strategy<Value = Vec<(u32, f64)>> {
    prop::collection::vec((0u32..32, 1.0f64..16.0), 0..6)
}

fn snapshot_with(rates: &[(u32, f64)]) -> (Cluster, ClusterSnapshot) {
    let mut cluster = Cluster::homogeneous(4, 8);
    for &(gpu, rate) in rates {
        cluster.set_rate(GpuId(gpu), rate.max(1.0));
    }
    let snapshot = cluster.snapshot();
    (cluster, snapshot)
}

fn planner_32b() -> Planner {
    common::planner_for(&ModelSpec::llama2_32b(), 64)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Whatever the straggler situation, the planner's output is a structurally
    /// valid plan covering all layers and the full global batch, fits in
    /// memory, and its estimated step time is finite.
    #[test]
    fn planner_always_produces_valid_plans(rates in arb_rates()) {
        let (_cluster, snapshot) = snapshot_with(&rates);
        let planner = planner_32b();
        let outcome = planner.plan(&snapshot).expect("a 32-GPU cluster always admits a plan");
        outcome.plan.validate(60, 64).expect("structurally valid");
        prop_assert!(planner.cost.memory_feasible(&outcome.plan));
        prop_assert!(outcome.estimated_step_time.is_finite());
        prop_assert!(outcome.estimated_step_time > 0.0);
        // Active + standby GPUs exactly cover the cluster.
        let active = outcome.plan.active_gpus().len();
        prop_assert_eq!(active + outcome.plan.removed_gpus.len(), 32);
    }

    /// The adapted plan is never (meaningfully) slower than the uniform
    /// Megatron-style plan evaluated under the same cost model.
    #[test]
    fn adapted_plan_never_loses_to_uniform(rates in arb_rates()) {
        let (_cluster, snapshot) = snapshot_with(&rates);
        let planner = planner_32b();
        let outcome = planner.plan(&snapshot).unwrap();
        let gpus: Vec<GpuId> = (0..32).map(GpuId).collect();
        let uniform = ParallelizationPlan::uniform(&gpus, 2, 4, 4, 60, 64, 1).unwrap();
        let uniform_time = planner.cost.step_time(&uniform, &snapshot);
        prop_assert!(
            outcome.estimated_step_time <= uniform_time * 1.05,
            "adapted {} vs uniform {}",
            outcome.estimated_step_time,
            uniform_time
        );
    }

    /// Grouping preserves every usable GPU exactly once and never crosses
    /// node boundaries, for every candidate TP degree.
    #[test]
    fn grouping_preserves_gpus(rates in arb_rates(), max_tp in prop::sample::select(vec![1u32, 2, 4, 8])) {
        let (_cluster, snapshot) = snapshot_with(&rates);
        let coeffs = ProfiledCoefficients::derive(ModelSpec::llama2_32b(), HardwareParams::a800_cluster());
        let grouping = group_cluster(&snapshot, &coeffs, max_tp, 1, 1.05, true);
        let mut seen: Vec<GpuId> = grouping.groups.iter().flat_map(|g| g.gpus.clone()).collect();
        seen.sort();
        seen.dedup();
        prop_assert_eq!(seen.len(), 32, "every GPU appears exactly once");
        for group in &grouping.groups {
            let nodes: std::collections::HashSet<u32> =
                group.gpus.iter().map(|g| snapshot.node_of(*g)).collect();
            prop_assert_eq!(nodes.len(), 1, "TP groups stay within a node");
            prop_assert!(group.tp_degree() <= max_tp);
        }
    }

    /// Migration between any two planner outputs conserves traffic (bytes sent
    /// equal bytes received) and moves only layers that actually changed owner.
    #[test]
    fn migration_conserves_traffic(rates_a in arb_rates(), rates_b in arb_rates()) {
        let (_c1, snap_a) = snapshot_with(&rates_a);
        let (_c2, snap_b) = snapshot_with(&rates_b);
        let planner = planner_32b();
        let plan_a = planner.plan(&snap_a).unwrap().plan;
        let plan_b = planner.replan(&snap_b, &plan_a).unwrap().plan;
        let coeffs = common::coeffs_32b();
        let migration = plan_migration(&plan_a, &plan_b, coeffs);
        let traffic = migration.per_gpu_traffic();
        let received: f64 = traffic.values().map(|(r, _)| r).sum();
        let sent: f64 = traffic.values().map(|(_, s)| s).sum();
        prop_assert!((received - sent).abs() < 1e-3);
        for mv in &migration.moves {
            prop_assert!(mv.src != mv.dst, "only real moves are recorded");
            prop_assert!(mv.bytes > 0.0);
        }
        // Migrating a plan onto itself is always free.
        prop_assert!(plan_migration(&plan_b, &plan_b, coeffs).is_empty());
    }

    /// The simulated step time never beats the theoretic optimum and a plan's
    /// simulated time is within sane bounds of the planner's estimate.
    #[test]
    fn simulated_time_brackets(rates in arb_rates()) {
        let (_cluster, snapshot) = snapshot_with(&rates);
        let planner = planner_32b();
        let coeffs = common::coeffs_32b();
        let outcome = planner.plan(&snapshot).unwrap();
        let report = simulate_step(coeffs, &outcome.plan, &snapshot).expect("plan fits");
        // Healthy reference for the theoretic optimum (shared fixture: planned
        // once per binary instead of once per case).
        let healthy = Cluster::homogeneous(4, 8).snapshot();
        let healthy_plan = common::healthy_plan_32b();
        let healthy_time = simulate_step(coeffs, &healthy_plan.plan, &healthy).unwrap().step_time;
        let optimum = malleus::baselines::theoretic_optimal_time(healthy_time, &snapshot);
        prop_assert!(report.step_time >= optimum * 0.95,
            "simulated {} cannot beat the theoretic optimum {}", report.step_time, optimum);
        let ratio = report.step_time / outcome.estimated_step_time;
        prop_assert!(ratio > 0.8 && ratio < 1.6, "estimate {} vs simulated {}", outcome.estimated_step_time, report.step_time);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Determinism under scheduling: for random clusters and a random worker
    /// count in {1, 2, 4, 8}, `plan()` returns bit-identical results across
    /// thread counts and across two repeated runs of the same planner (the
    /// second run additionally hits the warm grouping memo).
    #[test]
    fn planning_is_deterministic_under_scheduling(
        rates in arb_rates(),
        workers in prop::sample::select(vec![1usize, 2, 4, 8]),
    ) {
        let (_cluster, snapshot) = snapshot_with(&rates);
        let oracle = planner_32b().with_parallelism(Parallelism::Fixed(1));
        let candidate = planner_32b().with_parallelism(Parallelism::Fixed(workers));
        let a = oracle.plan(&snapshot).unwrap();
        let b = candidate.plan(&snapshot).unwrap();
        let c = candidate.plan(&snapshot).unwrap();
        prop_assert_eq!(&a.plan, &b.plan, "workers={} diverged from oracle", workers);
        prop_assert_eq!(&b.plan, &c.plan, "repeated run diverged at workers={}", workers);
        prop_assert_eq!(a.chosen_tp, b.chosen_tp);
        prop_assert_eq!(a.dp, b.dp);
        prop_assert_eq!(
            a.estimated_step_time.to_bits(),
            b.estimated_step_time.to_bits()
        );
        prop_assert_eq!(
            b.estimated_step_time.to_bits(),
            c.estimated_step_time.to_bits()
        );
    }
}
