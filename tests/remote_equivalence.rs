//! Remote-equivalence harness for the standalone plan server.
//!
//! The daemon must be invisible in the output: a plan served over the socket
//! — encoded with `malleus_wire`, routed through the daemon's admission gate,
//! coalescer and shared L2 cache, decoded back in the client — must be
//! **byte-identical** to the direct serial `Planner::plan` oracle: same
//! `ParallelizationPlan`, same chosen TP/DP, bit-equal `f64` cost estimates.
//! The suite drives one shared TCP daemon across every paper straggler
//! situation S1–S6, replays chained replans through the `PlanTransport`
//! route, and exercises the client-side L1 tier (hits, TTL bookkeeping,
//! drift-based invalidation) plus the Unix-socket transport.

mod common;

use malleus::prelude::*;
use std::sync::{Arc, OnceLock};

const SITUATIONS: [PaperSituation; 6] = [
    PaperSituation::S1,
    PaperSituation::S2,
    PaperSituation::S3,
    PaperSituation::S4,
    PaperSituation::S5,
    PaperSituation::S6,
];

/// Binary-scoped daemon on an ephemeral TCP port (never dropped: the statics
/// outlive every test, so the accept loop serves the whole binary).
fn daemon() -> &'static (Arc<PlanService>, PlanServer) {
    static CACHE: OnceLock<(Arc<PlanService>, PlanServer)> = OnceLock::new();
    CACHE.get_or_init(|| {
        let service = Arc::new(PlanService::new(ServiceConfig::default()));
        let server =
            PlanServer::bind_tcp(Arc::clone(&service), "127.0.0.1:0", ServerConfig::default())
                .expect("bind plan daemon");
        (service, server)
    })
}

/// A fresh client (own connection, own L1) against the shared daemon.
fn fresh_client() -> PlanClient {
    let addr = daemon().1.tcp_addr().expect("tcp endpoint");
    PlanClient::connect_tcp(addr, ClientConfig::default()).expect("connect plan client")
}

fn request_for(spec: &ModelSpec, nodes: u32, situation: PaperSituation) -> PlanRequest {
    PlanRequest::new(
        common::coeffs_for(spec).clone(),
        common::snapshot_for(nodes, situation),
        common::planner_for(spec, 64).config,
    )
}

fn assert_byte_identical(served: &PlanOutcome, oracle: &PlanOutcome, situation: PaperSituation) {
    assert_eq!(
        oracle.plan, served.plan,
        "under {situation:?}: socket plan diverges from the serial oracle"
    );
    assert_eq!(oracle.chosen_tp, served.chosen_tp, "under {situation:?}");
    assert_eq!(oracle.dp, served.dp, "under {situation:?}");
    assert_eq!(
        oracle.estimated_step_time.to_bits(),
        served.estimated_step_time.to_bits(),
        "under {situation:?}: exact estimates diverge across the wire"
    );
    assert_eq!(
        oracle.estimated_step_time_simplified.to_bits(),
        served.estimated_step_time_simplified.to_bits(),
        "under {situation:?}: simplified estimates diverge across the wire"
    );
}

#[test]
fn socket_plans_match_the_serial_oracle_across_all_situations() {
    let spec = ModelSpec::llama2_32b();
    let client = fresh_client();
    for situation in SITUATIONS {
        let oracle = common::oracle_planned(&spec, 64, 4, situation);
        let served = client
            .plan(&request_for(&spec, 4, situation))
            .unwrap_or_else(|e| panic!("socket plan under {situation:?}: {e}"));
        assert_byte_identical(&served, &oracle, situation);
    }
}

#[test]
fn chained_replans_over_the_socket_match_the_direct_path() {
    // Replay Normal → S2 → S3 → Normal through `replan_overlapped_shared`
    // driving the remote client as a `PlanTransport`, against the direct
    // serial replanner threading the same previous plans.
    let spec = ModelSpec::llama2_32b();
    let client = fresh_client();
    let oracle = common::planner_for(&spec, 64).with_parallelism(Parallelism::Fixed(1));
    let config = common::planner_for(&spec, 64).config;
    let mut previous = common::oracle_planned(&spec, 64, 4, PaperSituation::Normal)
        .plan
        .clone();
    for situation in [
        PaperSituation::S2,
        PaperSituation::S3,
        PaperSituation::Normal,
    ] {
        let snapshot = common::snapshot_for(4, situation);
        let direct = oracle
            .replan(&snapshot, &previous)
            .unwrap_or_else(|e| panic!("direct replan under {situation:?}: {e}"));
        let remote = replan_overlapped_shared(
            &client,
            BackendId::Malleus,
            common::coeffs_for(&spec),
            &config,
            &snapshot,
            &previous,
            12.0,
        )
        .unwrap_or_else(|e| panic!("remote replan under {situation:?}: {e}"));
        assert_eq!(
            remote.outcome.plan.as_ref(),
            Some(&direct.plan),
            "under {situation:?}: remote replan diverges"
        );
        assert_eq!(
            remote.outcome.estimated_step_time.to_bits(),
            direct.estimated_step_time.to_bits(),
            "under {situation:?}"
        );
        assert_eq!(remote.plan_changed, direct.plan != previous);
        previous = direct.plan;
    }
}

#[test]
fn l1_absorbs_repeats_and_drift_invalidates() {
    let spec = ModelSpec::llama2_32b();
    let client = fresh_client();
    let request = request_for(&spec, 4, PaperSituation::S4);

    let first = client.plan(&request).expect("miss goes to the daemon");
    let second = client.plan(&request).expect("repeat");
    assert_eq!(first.plan, second.plan);
    let stats = client.l1_stats();
    assert_eq!(stats.misses, 1, "first call misses L1: {stats:?}");
    assert_eq!(stats.hits, 1, "repeat is served from L1: {stats:?}");
    assert_eq!(stats.resident, 1);
    assert!(stats.approx_bytes > 0);

    // The live cluster drifts 2% on a GPU that is healthy under S4 (GPU 0 is
    // the S4 level-3 straggler): below the 5% replan threshold, the cached
    // entry stays valid.
    let mild = PlanRequest::new(
        request.coeffs.clone(),
        request.snapshot.with_rate(GpuId(1), 1.02),
        request.config.clone(),
    );
    client.plan(&mild).expect("mild-drift plan");
    assert_eq!(client.l1_stats().drift_evicted, 0);

    // The live cluster drifts 20%: every entry cached for the stale rates
    // must be invalidated before lookup.
    let heavy = PlanRequest::new(
        request.coeffs.clone(),
        request.snapshot.with_rate(GpuId(1), 1.2),
        request.config.clone(),
    );
    client.plan(&heavy).expect("heavy-drift plan");
    let stats = client.l1_stats();
    assert!(
        stats.drift_evicted >= 2,
        "stale entries survive a >5% drift: {stats:?}"
    );
    assert_eq!(stats.resident, 1, "only the live-snapshot plan remains");
}

#[cfg(unix)]
#[test]
fn unix_socket_daemon_matches_the_oracle() {
    let spec = ModelSpec::llama2_32b();
    let service = Arc::new(PlanService::new(ServiceConfig::default()));
    let path = std::env::temp_dir().join(format!(
        "malleus-remote-equivalence-{}.sock",
        std::process::id()
    ));
    let mut server = PlanServer::bind_unix(Arc::clone(&service), &path, ServerConfig::default())
        .expect("bind unix daemon");
    let client = PlanClient::connect_unix(&path, ClientConfig::default()).expect("connect");
    let situation = PaperSituation::S1;
    let oracle = common::oracle_planned(&spec, 64, 4, situation);
    let served = client
        .plan(&request_for(&spec, 4, situation))
        .expect("plan over the unix socket");
    assert_byte_identical(&served, &oracle, situation);
    server.shutdown();
    assert!(!path.exists(), "socket file removed on shutdown");
}
