//! Integration tests of the full planning pipeline on the paper's scenarios.
//!
//! Repeated (model, situation) planning problems are served by the shared
//! per-binary plan fixture (`common::planned`, backed by the planning
//! service), so e.g. the 110B-under-S4 plan needed by two tests here is
//! computed once — the remaining calls are cache hits.

mod common;

use common::{planned, planner_for as shared_planner_for, snapshot_for};
use malleus::prelude::*;

fn planner_for(spec: ModelSpec, batch: u64) -> Planner {
    shared_planner_for(&spec, batch)
}

#[test]
fn all_paper_situations_admit_valid_plans_for_all_models() {
    let workloads = [
        (ModelSpec::llama2_32b(), 4u32),
        (ModelSpec::llama2_70b(), 8),
        (ModelSpec::llama2_110b(), 8),
    ];
    for (spec, nodes) in workloads {
        let layers = spec.num_layers;
        let planner = planner_for(spec.clone(), 64);
        for situation in [
            PaperSituation::Normal,
            PaperSituation::S1,
            PaperSituation::S2,
            PaperSituation::S3,
            PaperSituation::S4,
            PaperSituation::S5,
            PaperSituation::S6,
        ] {
            let outcome = planned(&spec, 64, nodes, situation);
            outcome.plan.validate(layers, 64).unwrap();
            assert!(planner.cost.memory_feasible(&outcome.plan));
        }
    }
}

#[test]
fn case_study_110b_s4_removes_or_isolates_every_straggler() {
    // Table 4: under S4 the heavy stragglers end up isolated in small groups
    // (or parked as standby) and never share a group with healthy GPUs that
    // would be dragged down.
    let snapshot = snapshot_for(8, PaperSituation::S4);
    let outcome = planned(&ModelSpec::llama2_110b(), 64, 8, PaperSituation::S4);
    for straggler in snapshot.stragglers(1.05) {
        let holding_group = outcome.plan.pipelines.iter().find_map(|p| {
            p.stages
                .iter()
                .find(|s| s.group.gpus.contains(&straggler))
                .map(|s| s.group.clone())
        });
        match holding_group {
            None => assert!(outcome.plan.removed_gpus.contains(&straggler)),
            Some(group) => {
                // If a straggler is retained, every other member of its group
                // must also be a straggler of similar severity (Theorem 1).
                for member in &group.gpus {
                    assert!(
                        snapshot.rate(*member) > 1.05 || group.tp_degree() == 1,
                        "straggler {straggler} shares a group with healthy {member}"
                    );
                }
            }
        }
    }
}

#[test]
fn case_study_32b_s5_keeps_node_of_mild_stragglers_in_use() {
    // Table 4: under S5 the eight level-1 stragglers of node 0 are *retained*
    // (with fewer layers / less data), not discarded like a node-granular
    // approach would do.
    let snapshot = snapshot_for(4, PaperSituation::S5);
    let outcome = planned(&ModelSpec::llama2_32b(), 64, 4, PaperSituation::S5);
    let node0_active = outcome
        .plan
        .active_gpus()
        .iter()
        .filter(|g| snapshot.node_of(**g) == 0)
        .count();
    assert!(
        node0_active >= 4,
        "most of the mildly straggling node should stay in use, got {node0_active}"
    );
}

#[test]
fn planner_beats_every_uniform_configuration_under_stragglers() {
    let planner = planner_for(ModelSpec::llama2_32b(), 64);
    let snapshot = snapshot_for(4, PaperSituation::S4);
    let outcome = planned(&ModelSpec::llama2_32b(), 64, 4, PaperSituation::S4);
    let gpus: Vec<GpuId> = (0..32).map(GpuId).collect();
    for (dp, tp, pp) in [(2usize, 4u32, 4usize), (4, 4, 2), (2, 8, 2), (1, 8, 4)] {
        let Ok(uniform) = ParallelizationPlan::uniform(&gpus, dp, pp, tp, 60, 64, 1) else {
            continue;
        };
        if !planner.cost.memory_feasible(&uniform) {
            continue;
        }
        let uniform_time = planner.cost.step_time(&uniform, &snapshot);
        assert!(
            outcome.estimated_step_time <= uniform_time,
            "DP{dp}TP{tp}PP{pp}: uniform {uniform_time} beats malleus {}",
            outcome.estimated_step_time
        );
    }
}

#[test]
fn replanning_under_each_situation_improves_over_stale_plan() {
    // Re-planning keeps the DP degree when a feasible plan with that degree
    // exists (covered by the planner unit tests); under the severe 70B
    // situations the fixed-DP search may be infeasible and the documented
    // fallback re-opens the DP enumeration.  Either way the adapted plan must
    // be valid and strictly better than keeping the stale plan.
    let planner = planner_for(ModelSpec::llama2_70b(), 64);
    let initial = planned(&ModelSpec::llama2_70b(), 64, 8, PaperSituation::Normal);
    for situation in [PaperSituation::S2, PaperSituation::S5] {
        let snapshot = snapshot_for(8, situation);
        let replanned = planner.replan(&snapshot, &initial.plan).unwrap();
        replanned
            .plan
            .validate(ModelSpec::llama2_70b().num_layers, 64)
            .unwrap();
        let stale_time = planner.cost.step_time(&initial.plan, &snapshot);
        assert!(
            replanned.estimated_step_time < stale_time,
            "{situation:?}: replanned {} should beat stale {stale_time}",
            replanned.estimated_step_time
        );
    }
}

#[test]
fn theoretic_optimum_lower_bounds_malleus_simulated_time() {
    let coeffs = common::coeffs_32b();
    let healthy = snapshot_for(4, PaperSituation::Normal);
    let healthy_time = simulate_step(coeffs, &common::healthy_plan_32b().plan, &healthy)
        .unwrap()
        .step_time;
    for situation in [PaperSituation::S1, PaperSituation::S4, PaperSituation::S6] {
        let snapshot = snapshot_for(4, situation);
        let outcome = planned(&ModelSpec::llama2_32b(), 64, 4, situation);
        let simulated = simulate_step(coeffs, &outcome.plan, &snapshot)
            .unwrap()
            .step_time;
        let optimum = malleus::baselines::theoretic_optimal_time(healthy_time, &snapshot);
        assert!(
            simulated >= optimum * 0.98,
            "{situation:?}: {simulated} < {optimum}"
        );
        // The paper reports Malleus stays within ~10% of the optimum on its
        // testbed; our simulator adds sync/bubble overheads, so allow 2x.
        assert!(
            simulated <= optimum * 2.0,
            "{situation:?}: {simulated} vs {optimum}"
        );
    }
}
