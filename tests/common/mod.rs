//! Shared fixtures for the facade integration suites.
//!
//! `ProfiledCoefficients::derive` results (and a few frequently re-planned
//! outcomes) are memoized in `OnceLock` statics so each test binary derives
//! them once instead of once per test — the integration suites are the
//! test-time hotspot flagged in ROADMAP.md.

#![allow(dead_code)]

use malleus::prelude::*;
use std::sync::OnceLock;

fn derive(spec: ModelSpec) -> ProfiledCoefficients {
    ProfiledCoefficients::derive(spec, HardwareParams::a800_cluster())
}

/// Profiled coefficients for the 7B model (lazily derived once per binary).
pub fn coeffs_7b() -> &'static ProfiledCoefficients {
    static CACHE: OnceLock<ProfiledCoefficients> = OnceLock::new();
    CACHE.get_or_init(|| derive(ModelSpec::llama2_7b()))
}

/// Profiled coefficients for the paper's 32B workload.
pub fn coeffs_32b() -> &'static ProfiledCoefficients {
    static CACHE: OnceLock<ProfiledCoefficients> = OnceLock::new();
    CACHE.get_or_init(|| derive(ModelSpec::llama2_32b()))
}

/// Profiled coefficients for the paper's 70B workload.
pub fn coeffs_70b() -> &'static ProfiledCoefficients {
    static CACHE: OnceLock<ProfiledCoefficients> = OnceLock::new();
    CACHE.get_or_init(|| derive(ModelSpec::llama2_70b()))
}

/// Profiled coefficients for the paper's 110B workload.
pub fn coeffs_110b() -> &'static ProfiledCoefficients {
    static CACHE: OnceLock<ProfiledCoefficients> = OnceLock::new();
    CACHE.get_or_init(|| derive(ModelSpec::llama2_110b()))
}

/// Coefficients for one of the paper presets, by spec.
pub fn coeffs_for(spec: &ModelSpec) -> &'static ProfiledCoefficients {
    match spec.name.as_str() {
        "llama2-7b" => coeffs_7b(),
        "llama2-32b" => coeffs_32b(),
        "llama2-70b" => coeffs_70b(),
        "llama2-110b" => coeffs_110b(),
        other => panic!("no shared fixture for spec {other}"),
    }
}

/// A planner over the shared coefficients with the default configuration and
/// the given global batch.
pub fn planner_for(spec: &ModelSpec, batch: u64) -> Planner {
    Planner::new(
        coeffs_for(spec).clone(),
        PlannerConfig {
            global_batch_size: batch,
            ..PlannerConfig::default()
        },
    )
}

/// Snapshot of an `nodes`×8 cluster under one of the paper's situations.
pub fn snapshot_for(nodes: u32, situation: PaperSituation) -> ClusterSnapshot {
    let mut cluster = Cluster::homogeneous(nodes, 8);
    let s = situation.situation(&cluster);
    cluster.apply_situation(&s.rates);
    cluster.snapshot()
}

/// The healthy-cluster 32B plan (4×8 GPUs, batch 64), planned once per binary.
pub fn healthy_plan_32b() -> &'static PlanOutcome {
    static CACHE: OnceLock<PlanOutcome> = OnceLock::new();
    CACHE.get_or_init(|| {
        let snapshot = snapshot_for(4, PaperSituation::Normal);
        planner_for(&ModelSpec::llama2_32b(), 64)
            .plan(&snapshot)
            .expect("healthy 32B plan")
    })
}
