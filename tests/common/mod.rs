//! Shared fixtures for the facade integration suites.
//!
//! `ProfiledCoefficients::derive` results are memoized in `OnceLock` statics
//! so each test binary derives them once instead of once per test, and the
//! frequently repeated 70B/110B planning calls — the test-time hotspot
//! flagged in ROADMAP.md — are routed through a binary-scoped [`PlanService`]
//! ([`planned`]): every (snapshot, coefficients, config) planning problem is
//! solved once per binary and shared, with concurrent tests coalescing onto
//! one in-flight computation.  Service-returned plans are byte-identical to
//! direct `Planner::plan` calls (proven by `tests/parallel_equivalence.rs`),
//! so fixtures never change what a test observes.

#![allow(dead_code)]

use malleus::prelude::*;
use std::sync::{Arc, OnceLock};

fn derive(spec: ModelSpec) -> ProfiledCoefficients {
    ProfiledCoefficients::derive(spec, HardwareParams::a800_cluster())
}

/// Profiled coefficients for the 7B model (lazily derived once per binary).
pub fn coeffs_7b() -> &'static ProfiledCoefficients {
    static CACHE: OnceLock<ProfiledCoefficients> = OnceLock::new();
    CACHE.get_or_init(|| derive(ModelSpec::llama2_7b()))
}

/// Profiled coefficients for the paper's 32B workload.
pub fn coeffs_32b() -> &'static ProfiledCoefficients {
    static CACHE: OnceLock<ProfiledCoefficients> = OnceLock::new();
    CACHE.get_or_init(|| derive(ModelSpec::llama2_32b()))
}

/// Profiled coefficients for the paper's 70B workload.
pub fn coeffs_70b() -> &'static ProfiledCoefficients {
    static CACHE: OnceLock<ProfiledCoefficients> = OnceLock::new();
    CACHE.get_or_init(|| derive(ModelSpec::llama2_70b()))
}

/// Profiled coefficients for the paper's 110B workload.
pub fn coeffs_110b() -> &'static ProfiledCoefficients {
    static CACHE: OnceLock<ProfiledCoefficients> = OnceLock::new();
    CACHE.get_or_init(|| derive(ModelSpec::llama2_110b()))
}

/// Coefficients for one of the paper presets, by spec.
pub fn coeffs_for(spec: &ModelSpec) -> &'static ProfiledCoefficients {
    match spec.name.as_str() {
        "llama2-7b" => coeffs_7b(),
        "llama2-32b" => coeffs_32b(),
        "llama2-70b" => coeffs_70b(),
        "llama2-110b" => coeffs_110b(),
        other => panic!("no shared fixture for spec {other}"),
    }
}

/// A planner over the shared coefficients with the default configuration and
/// the given global batch.
pub fn planner_for(spec: &ModelSpec, batch: u64) -> Planner {
    Planner::new(
        coeffs_for(spec).clone(),
        PlannerConfig {
            global_batch_size: batch,
            ..PlannerConfig::default()
        },
    )
}

/// Snapshot of an `nodes`×8 cluster under one of the paper's situations.
pub fn snapshot_for(nodes: u32, situation: PaperSituation) -> ClusterSnapshot {
    let mut cluster = Cluster::homogeneous(nodes, 8);
    let s = situation.situation(&cluster);
    cluster.apply_situation(&s.rates);
    cluster.snapshot()
}

/// Binary-scoped planning service: plan-level memoization shared by every
/// test in the binary (plus coalescing when tests run concurrently).
pub fn plan_service() -> &'static Arc<PlanService> {
    static CACHE: OnceLock<Arc<PlanService>> = OnceLock::new();
    CACHE.get_or_init(|| Arc::new(PlanService::new(ServiceConfig::default())))
}

/// Plan one of the paper's workloads under a situation, memoized per binary
/// through the shared [`plan_service`].  Byte-identical to a direct
/// `Planner::plan` call with the [`planner_for`] configuration.
pub fn planned(
    spec: &ModelSpec,
    batch: u64,
    nodes: u32,
    situation: PaperSituation,
) -> Arc<PlanOutcome> {
    let request = PlanRequest::new(
        coeffs_for(spec).clone(),
        snapshot_for(nodes, situation),
        PlannerConfig {
            global_batch_size: batch,
            ..PlannerConfig::default()
        },
    );
    plan_service().plan(&request).unwrap_or_else(|e| {
        panic!(
            "shared plan fixture for {} under {situation:?}: {e}",
            spec.name
        )
    })
}

/// Binary-scoped *serial-execution* planning service: `worker_budget = 1`
/// pins every invocation to one worker, so its outputs are exactly the
/// `Parallelism::Fixed(1)` oracle plans the deterministic-equivalence
/// harness compares against — computed once per binary and shared.
pub fn oracle_service() -> &'static Arc<PlanService> {
    static CACHE: OnceLock<Arc<PlanService>> = OnceLock::new();
    CACHE.get_or_init(|| {
        Arc::new(PlanService::new(ServiceConfig {
            worker_budget: 1,
            ..ServiceConfig::default()
        }))
    })
}

/// The serial-oracle plan for one of the paper's workloads under a situation,
/// memoized per binary through [`oracle_service`].
pub fn oracle_planned(
    spec: &ModelSpec,
    batch: u64,
    nodes: u32,
    situation: PaperSituation,
) -> Arc<PlanOutcome> {
    let request = PlanRequest::new(
        coeffs_for(spec).clone(),
        snapshot_for(nodes, situation),
        PlannerConfig {
            global_batch_size: batch,
            ..PlannerConfig::default()
        },
    );
    oracle_service().plan(&request).unwrap_or_else(|e| {
        panic!(
            "oracle plan fixture for {} under {situation:?}: {e}",
            spec.name
        )
    })
}

/// The healthy-cluster 32B plan (4×8 GPUs, batch 64), planned once per binary.
pub fn healthy_plan_32b() -> Arc<PlanOutcome> {
    planned(&ModelSpec::llama2_32b(), 64, 4, PaperSituation::Normal)
}
