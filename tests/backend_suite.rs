//! Backend golden + property suite.
//!
//! Pins the baseline planners' decisions on the paper's S1–S6 situations
//! (32B workload, 4×8 A800 cluster, batch 64) so refactors of the backend
//! layer cannot silently change what Megatron-LM or the restart remediation
//! would do, and property-checks the whole backend registry against the
//! theoretic lower bound of §2.3: no system — Malleus included — may claim a
//! step time below `theoretic_optimal_time` for its own healthy baseline.

mod common;

use malleus::prelude::*;
use proptest::prelude::*;

fn megatron_32b() -> MegatronPlanner {
    MegatronPlanner::new(common::coeffs_32b().clone(), 64, 8)
}

#[test]
fn megatron_search_is_pinned_on_the_32b_workload() {
    // The offline grid search over a healthy 32-GPU cluster must keep landing
    // on the Table-6-style configuration: full intra-node TP, no pipeline, no
    // activation checkpointing.
    let mega = megatron_32b();
    let all_gpus: Vec<GpuId> = (0..32).map(GpuId).collect();
    let (config, plan, healthy_time) = mega.search(&all_gpus).expect("megatron search");
    assert_eq!(config.to_string(), "DP4TP8PP1, mbs4");
    assert!(!config.activation_checkpointing);
    assert_eq!(plan.dp(), 4);
    assert_eq!(format!("{healthy_time:.6}"), "10.212093");
}

#[test]
fn megatron_step_times_are_pinned_across_situations() {
    // The tuned-but-static plan is gated by the slowest participant; these
    // are the Table-2 numbers the arena experiment reproduces.
    let mega = megatron_32b();
    let all_gpus: Vec<GpuId> = (0..32).map(GpuId).collect();
    let (config, plan, _) = mega.search(&all_gpus).expect("megatron search");
    let golden = [
        (PaperSituation::S1, "25.580498"),
        (PaperSituation::S2, "53.478557"),
        (PaperSituation::S3, "53.478557"),
        (PaperSituation::S4, "53.478557"),
        (PaperSituation::S5, "37.620713"),
        (PaperSituation::S6, "26.069937"),
    ];
    for (situation, expected) in golden {
        let snapshot = common::snapshot_for(4, situation);
        let t = mega
            .simulate_step(&plan, &snapshot, config.activation_checkpointing)
            .expect("simulate");
        assert_eq!(
            format!("{t:.6}"),
            expected,
            "megatron step time drifted under {situation:?}"
        );
    }
}

#[test]
fn restart_decisions_are_pinned_across_situations() {
    // Node-granularity exclusion: every situation needs a restart from the
    // full 4-node set, and identical straggler *placements* (S2/S3/S4 all
    // have their worst straggler on different nodes but the same survivor
    // count pattern) re-tune to identical configurations.
    let all_nodes: Vec<u32> = (0..4).collect();
    let golden_megatron = [
        (
            PaperSituation::S1,
            vec![1u32, 2, 3],
            "DP2TP4PP3, mbs1",
            "13.434451",
        ),
        (
            PaperSituation::S2,
            vec![1, 2, 3],
            "DP2TP4PP3, mbs1",
            "13.434451",
        ),
        (
            PaperSituation::S3,
            vec![2, 3],
            "DP4TP4PP1, mbs2",
            "19.377257",
        ),
        (PaperSituation::S4, vec![3], "DP1TP4PP2, mbs1", "37.804909"),
        (
            PaperSituation::S5,
            vec![2, 3],
            "DP4TP4PP1, mbs2",
            "19.377257",
        ),
        (
            PaperSituation::S6,
            vec![1, 2, 3],
            "DP2TP4PP3, mbs1",
            "13.434451",
        ),
    ];
    let golden_deepspeed = [
        (
            PaperSituation::S1,
            vec![1u32, 2, 3],
            "DP12SP2+AC, mbs6",
            "24.054821",
        ),
        (
            PaperSituation::S2,
            vec![1, 2, 3],
            "DP12SP2+AC, mbs6",
            "24.054821",
        ),
        (
            PaperSituation::S3,
            vec![2, 3],
            "DP16SP1+AC, mbs4",
            "29.818999",
        ),
        (PaperSituation::S4, vec![3], "DP8SP1+AC, mbs4", "58.809860"),
        (
            PaperSituation::S5,
            vec![2, 3],
            "DP16SP1+AC, mbs4",
            "29.818999",
        ),
        (
            PaperSituation::S6,
            vec![1, 2, 3],
            "DP12SP2+AC, mbs6",
            "24.054821",
        ),
    ];
    for (family, golden) in [
        (RestartFamily::Megatron, &golden_megatron),
        (RestartFamily::DeepSpeed, &golden_deepspeed),
    ] {
        let planner = RestartPlanner::new(family, common::coeffs_32b().clone(), 64, 8);
        for (situation, nodes, config, step) in golden {
            let snapshot = common::snapshot_for(4, *situation);
            let outcome = planner
                .handle_situation(&snapshot, Some(&all_nodes))
                .unwrap_or_else(|| panic!("{family:?} under {situation:?}"));
            assert_eq!(&outcome.nodes_used, nodes, "{family:?} under {situation:?}");
            assert_eq!(&outcome.config, config, "{family:?} under {situation:?}");
            assert_eq!(
                format!("{:.6}", outcome.step_time),
                *step,
                "{family:?} step time drifted under {situation:?}"
            );
            assert!(outcome.restarted, "{family:?} under {situation:?}");
            assert!(outcome.restart_cost > 0.0);
        }
    }
}

/// Sparse stragglers on a 2-node × 8-GPU cluster (the 7B scale keeps every
/// backend's search fast enough for a property sweep).
fn arb_sparse_rates() -> impl Strategy<Value = Vec<(u32, f64)>> {
    prop::collection::vec((0u32..16, 1.0f64..6.0), 0..4)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// No backend — Malleus included — may report a step-time estimate below
    /// the theoretic optimum derived from its *own* healthy baseline: the
    /// bound assumes perfect fractional work splitting, which no concrete
    /// parallelization can beat.  Node-granularity backends are allowed to
    /// fail typed (`NoHealthyNodes`) when stragglers cover every node.
    #[test]
    fn no_backend_beats_the_theoretic_optimum(rates in arb_sparse_rates()) {
        let coeffs = common::coeffs_7b();
        let config = PlannerConfig {
            global_batch_size: 16,
            ..PlannerConfig::default()
        };
        let mut cluster = Cluster::homogeneous(2, 8);
        for &(gpu, rate) in &rates {
            cluster.set_rate(GpuId(gpu), rate.max(1.0));
        }
        let healthy = Cluster::homogeneous(2, 8).snapshot();
        let straggled = cluster.snapshot();

        let mut backends: Vec<Box<dyn PlanBackend>> = vec![Box::new(Planner::new(
            coeffs.clone(),
            config.clone(),
        ))];
        for (_, ctor) in baseline_constructors(8) {
            backends.push(ctor(coeffs, &config));
        }
        for backend in &backends {
            let healthy_outcome = backend
                .plan(&healthy, &config)
                .unwrap_or_else(|e| panic!("{} healthy plan: {e}", backend.id()));
            let optimum =
                theoretic_optimal_time(healthy_outcome.estimated_step_time, &straggled);
            match backend.plan(&straggled, &config) {
                Ok(outcome) => prop_assert!(
                    outcome.estimated_step_time >= optimum * 0.999,
                    "{} claims {} below optimum {}",
                    backend.id(),
                    outcome.estimated_step_time,
                    optimum
                ),
                Err(PlanError::NoHealthyNodes) => {
                    // Legal only when every node hosts a straggler.
                    let mut node_has_straggler = [false; 2];
                    for &(gpu, rate) in &rates {
                        if rate > 1.05 {
                            node_has_straggler[(gpu / 8) as usize] = true;
                        }
                    }
                    prop_assert!(node_has_straggler.iter().all(|&s| s));
                }
                Err(e) => panic!("{}: unexpected {e}", backend.id()),
            }
        }
    }
}
