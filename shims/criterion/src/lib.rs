//! Offline API shim for `criterion` 0.5.
//!
//! Provides the macro / builder surface the malleus benches use
//! (`criterion_group!`, `criterion_main!`, `Criterion::bench_function`,
//! benchmark groups, `BenchmarkId`, `black_box`) with a plain wall-clock
//! measurement loop: a short warm-up, then `sample_size` timed samples, then a
//! one-line mean/min report. No statistics, plots or baselines — enough for
//! `cargo bench` to produce comparable numbers and for `cargo bench --no-run`
//! to compile everything.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

const WARMUP: Duration = Duration::from_millis(50);
const SAMPLE_TARGET: Duration = Duration::from_millis(20);

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Anything `bench_function` / `bench_with_input` accepts as an id.
pub trait IntoBenchmarkId {
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

/// Timing loop handle passed to bench closures.
pub struct Bencher {
    sample_size: usize,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Measures `f` — warm-up, then `sample_size` samples of an adaptively
    /// chosen iteration count.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let warmup_start = Instant::now();
        let mut iters_done = 0u64;
        while warmup_start.elapsed() < WARMUP || iters_done == 0 {
            black_box(f());
            iters_done += 1;
        }
        let per_iter = warmup_start.elapsed() / iters_done.max(1) as u32;
        let iters_per_sample = if per_iter.is_zero() {
            1000
        } else {
            (SAMPLE_TARGET.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 1_000_000) as u64
        };

        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(f());
            }
            self.samples.push(start.elapsed() / iters_per_sample as u32);
        }
    }

    fn report(&self, id: &str) {
        if self.samples.is_empty() {
            println!("{id:<50} (no samples)");
            return;
        }
        let mean: Duration = self.samples.iter().sum::<Duration>() / self.samples.len() as u32;
        let min = self.samples.iter().min().copied().unwrap_or_default();
        println!(
            "{id:<50} time: [mean {mean:>12.3?}  min {min:>12.3?}  samples {}]",
            self.samples.len()
        );
    }
}

/// Top-level harness handle, mirroring `criterion::Criterion`.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            _criterion: self,
        }
    }

    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(id.into_id(), self.sample_size, &mut f);
        self
    }
}

/// A named group of related benchmarks, mirroring `criterion::BenchmarkGroup`.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(
            format!("{}/{}", self.name, id.into_id()),
            self.sample_size,
            &mut f,
        );
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.into_id());
        run_one_with(full, self.sample_size, |b| f(b, input));
        self
    }

    pub fn finish(self) {}
}

fn run_one(id: String, sample_size: usize, f: &mut dyn FnMut(&mut Bencher)) {
    run_one_with(id, sample_size, f)
}

fn run_one_with<F: FnMut(&mut Bencher)>(id: String, sample_size: usize, mut f: F) {
    let mut bencher = Bencher {
        sample_size,
        samples: Vec::new(),
    };
    f(&mut bencher);
    bencher.report(&id);
}

#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $cfg;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        c.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        let mut group = c.benchmark_group("grouped");
        group.sample_size(3);
        group.bench_with_input(BenchmarkId::from_parameter("4"), &4u64, |b, &n| {
            b.iter(|| black_box(n * 2))
        });
        group.finish();
    }

    #[test]
    fn harness_runs_and_reports() {
        let mut criterion = Criterion::default().sample_size(2);
        sample_bench(&mut criterion);
    }
}
