//! No-op `Serialize` / `Deserialize` derives for the offline serde shim.
//!
//! The shim's traits are blanket-implemented for every type, so the derives
//! have nothing to generate; they exist only so `#[derive(Serialize,
//! Deserialize)]` attributes in the workspace compile unchanged.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
