//! Offline API shim for `serde`.
//!
//! The build container has no network access to crates.io, so the workspace
//! vendors the *surface* of serde that the malleus crates use: the
//! `Serialize` / `Deserialize` traits (as blanket-implemented markers, since
//! nothing in the workspace performs actual serialization yet) and the two
//! derive macros (as no-ops). Swapping back to real serde is a one-line edit
//! in the root `Cargo.toml` `[workspace.dependencies]` table; no source file
//! changes are needed because the import surface is identical.

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de> {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}

/// Marker stand-in for `serde::de::DeserializeOwned`.
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}
impl<T> DeserializeOwned for T {}

pub mod de {
    pub use crate::{Deserialize, DeserializeOwned};
}

pub mod ser {
    pub use crate::Serialize;
}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
