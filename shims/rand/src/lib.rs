//! Offline API shim for `rand` 0.9.
//!
//! Implements the subset of the rand 0.9 surface the malleus workspace uses —
//! `rngs::StdRng`, `SeedableRng::seed_from_u64`, `Rng::{random_bool,
//! random_range}` and `SliceRandom::shuffle` — on top of a SplitMix64
//! generator. Deterministic for a given seed, which is all the straggler
//! traces and experiment harnesses require. Statistical quality is adequate
//! for simulation seeding but this is NOT a cryptographic generator.

use core::ops::{Range, RangeInclusive};

/// Low-level 64-bit generator interface.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

/// High-level sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn random_bool(&mut self, p: f64) -> bool {
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }

    /// Samples uniformly from a range; panics on an empty range.
    fn random_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A range that can produce a uniform sample, mirroring `rand::distr`.
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample from empty range");
                let span = (end - start) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}

impl_int_sample_range!(u8, u16, u32, u64, usize);

// Rejection-samples so rounding at the top of the interval can never return
// `end` (the half-open contract); `start` is always accepted, so the loop
// terminates.
macro_rules! impl_float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                loop {
                    let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
                    // Convex combination rather than start + span*unit: the
                    // span can overflow to infinity (e.g. MIN..MAX) even
                    // though every combination is finite.
                    let unit = unit as $t;
                    let value = self.start * (1.0 - unit) + self.end * unit;
                    if value.is_finite() && value >= self.start && value < self.end {
                        return value;
                    }
                }
            }
        }
    )*};
}

impl_float_sample_range!(f32, f64);

/// In-place slice shuffling, mirroring `rand::seq::SliceRandom`.
pub trait SliceRandom {
    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
}

impl<T> SliceRandom for [T] {
    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = rng.random_range(0..=i);
            self.swap(i, j);
        }
    }
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// SplitMix64-backed stand-in for `rand::rngs::StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            StdRng { state }
        }
    }
}

pub mod seq {
    pub use super::SliceRandom;
}

pub mod prelude {
    pub use super::rngs::StdRng;
    pub use super::{Rng, RngCore, SampleRange, SeedableRng, SliceRandom};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_for_a_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: u32 = rng.random_range(3..17);
            assert!((3..17).contains(&x));
            let y: usize = rng.random_range(1..=5);
            assert!((1..=5).contains(&y));
            let f: f64 = rng.random_range(0.5..2.0);
            assert!((0.5..2.0).contains(&f));
        }
    }

    #[test]
    fn full_width_float_range_terminates_and_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(13);
        for _ in 0..200 {
            let f: f32 = rng.random_range(f32::MIN..f32::MAX);
            assert!(f.is_finite() && (f32::MIN..f32::MAX).contains(&f));
            let d: f64 = rng.random_range(f64::MIN..f64::MAX);
            assert!(d.is_finite() && (f64::MIN..f64::MAX).contains(&d));
        }
    }

    #[test]
    fn bool_probability_extremes() {
        let mut rng = StdRng::seed_from_u64(9);
        assert!(!(0..100).any(|_| rng.random_bool(0.0)));
        assert!((0..100).all(|_| rng.random_bool(1.0)));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "a 100-element shuffle should move something");
    }
}
