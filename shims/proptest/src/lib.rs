//! Offline API shim for `proptest`.
//!
//! The build container has no crates.io access, so this crate reimplements the
//! subset of proptest the malleus test suites use: numeric-range / tuple /
//! `prop::collection::vec` / `prop::option::of` / `prop::sample::select`
//! strategies, the `proptest!` test-generating macro, `ProptestConfig`, and
//! the `prop_assert*` macros. Sampling is purely random (no shrinking) and
//! fully deterministic: each test case's RNG is derived from a fixed base seed
//! hashed with the test name and case index, so failures reproduce exactly.

pub mod strategy;
pub mod test_runner;

/// Namespace mirror of `proptest::prop` (`prop::collection`, `prop::option`,
/// `prop::sample`).
pub mod prop {
    pub mod collection {
        pub use crate::strategy::vec;
    }
    pub mod option {
        pub use crate::strategy::of;
    }
    pub mod sample {
        pub use crate::strategy::select;
    }
}

pub mod prelude {
    pub use crate::prop;
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::{ProptestConfig, TestRunner};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Generates `#[test]` functions whose arguments are sampled from strategies.
///
/// Supports the `#![proptest_config(...)]` inner attribute and any number of
/// `#[test] fn name(arg in strategy, ...) { body }` items, mirroring the real
/// `proptest!` macro's surface.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident ( $($arg:ident in $strat:expr),* $(,)? ) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let mut runner = $crate::test_runner::TestRunner::new($cfg);
            runner.run(stringify!($name), |__proptest_rng| {
                $(let $arg = $crate::strategy::Strategy::sample(&($strat), __proptest_rng);)*
                $body
                ::core::result::Result::Ok(())
            });
        }
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
}

/// `prop_assert!` — fails the current case (with the case's inputs reported by
/// the runner) instead of panicking directly.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err(::std::format!(
                "assertion failed: {}", stringify!($cond)
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err(::std::format!($($fmt)+));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return ::core::result::Result::Err(::std::format!(
                "assertion failed: `{:?} == {:?}`", l, r
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return ::core::result::Result::Err(::std::format!(
                "assertion failed: `{:?} == {:?}`: {}", l, r, ::std::format!($($fmt)+)
            ));
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if !(l != r) {
            return ::core::result::Result::Err(::std::format!(
                "assertion failed: `{:?} != {:?}`",
                l,
                r
            ));
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    #[test]
    fn vec_strategy_respects_length_range() {
        let mut rng = TestRng::from_seed(3);
        let strat = prop::collection::vec(0u32..10, 2..5);
        for _ in 0..200 {
            let v = strat.sample(&mut rng);
            assert!((2..5).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 10));
        }
    }

    #[test]
    fn signed_ranges_wider_than_the_type_do_not_overflow() {
        let mut rng = TestRng::from_seed(6);
        let narrow = -50i8..100;
        for _ in 0..500 {
            assert!((-50..100).contains(&narrow.sample(&mut rng)));
        }
        let full = i64::MIN..i64::MAX;
        for _ in 0..100 {
            let _ = full.sample(&mut rng);
        }
    }

    #[test]
    fn full_width_float_range_terminates_and_stays_in_bounds() {
        let mut rng = TestRng::from_seed(8);
        let strat = f64::MIN..f64::MAX;
        for _ in 0..200 {
            let v = strat.sample(&mut rng);
            assert!(v.is_finite() && (f64::MIN..f64::MAX).contains(&v));
        }
    }

    #[test]
    #[allow(clippy::reversed_empty_ranges)] // the inverted range is the point of the test
    fn empty_vec_length_range_panics() {
        let result = std::panic::catch_unwind(|| {
            let mut rng = TestRng::from_seed(7);
            prop::collection::vec(0u32..10, 5..3).sample(&mut rng)
        });
        assert!(result.is_err(), "inverted length range must panic");
    }

    #[test]
    fn select_only_yields_listed_values() {
        let mut rng = TestRng::from_seed(4);
        let strat = prop::sample::select(vec![1u32, 2, 4, 8]);
        for _ in 0..100 {
            assert!([1, 2, 4, 8].contains(&strat.sample(&mut rng)));
        }
    }

    #[test]
    fn option_strategy_yields_both_variants() {
        let mut rng = TestRng::from_seed(5);
        let strat = prop::option::of(0u64..100);
        let samples: Vec<_> = (0..100).map(|_| strat.sample(&mut rng)).collect();
        assert!(samples.iter().any(|s| s.is_some()));
        assert!(samples.iter().any(|s| s.is_none()));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// The macro itself: tuples, ranges, and prop_assert all wire up.
        #[test]
        fn macro_generates_working_tests(
            pair in (0u32..8, 1.0f64..2.0),
            n in 1usize..=4,
        ) {
            prop_assert!(pair.0 < 8);
            prop_assert!(pair.1 >= 1.0 && pair.1 < 2.0);
            prop_assert_eq!(n.clamp(1, 4), n);
        }
    }
}
