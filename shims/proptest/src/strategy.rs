//! Sampling strategies — the shim's analogue of `proptest::strategy`.

use crate::test_runner::TestRng;
use core::ops::{Range, RangeInclusive};

/// A source of random values of one type. Unlike real proptest there is no
/// value tree and no shrinking; `sample` draws one value.
pub trait Strategy {
    type Value;
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (**self).sample(rng)
    }
}

// Spans are computed in i128 so ranges wider than the value type (e.g.
// `-50i8..100`, `i64::MIN..i64::MAX`) neither overflow nor wrap.
macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty strategy range");
                let span = (end as i128 - start as i128) as u128 + 1;
                (start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}

impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

// Rejection-samples so rounding at the top of the interval can never return
// `end` (the half-open contract); `start` is always accepted, so the loop
// terminates.
macro_rules! impl_float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                loop {
                    let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
                    // Convex combination rather than start + span*unit: the
                    // span can overflow to infinity (e.g. MIN..MAX) even
                    // though every combination is finite.
                    let unit = unit as $t;
                    let value = self.start * (1.0 - unit) + self.end * unit;
                    if value.is_finite() && value >= self.start && value < self.end {
                        return value;
                    }
                }
            }
        }
    )*};
}

impl_float_range_strategy!(f32, f64);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+))+) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    )+};
}

impl_tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}

/// `prop::collection::vec(element, len_range)`.
pub struct VecStrategy<S> {
    element: S,
    len: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        let len = self.len.clone().sample(rng);
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}

pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
    VecStrategy { element, len }
}

/// `prop::option::of(inner)` — `None` roughly one time in four, like real
/// proptest's default `Option` weighting.
pub struct OptionStrategy<S> {
    inner: S,
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        if rng.next_u64().is_multiple_of(4) {
            None
        } else {
            Some(self.inner.sample(rng))
        }
    }
}

pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
    OptionStrategy { inner }
}

/// `prop::sample::select(values)` — uniform choice from a non-empty list.
pub struct Select<T> {
    values: Vec<T>,
}

impl<T: Clone> Strategy for Select<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        assert!(!self.values.is_empty(), "select() needs at least one value");
        self.values[(rng.next_u64() % self.values.len() as u64) as usize].clone()
    }
}

pub fn select<T: Clone>(values: Vec<T>) -> Select<T> {
    Select { values }
}

/// `Just` — always yields a clone of one value.
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}
