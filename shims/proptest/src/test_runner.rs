//! Deterministic case runner — the shim's analogue of `proptest::test_runner`.

/// Configuration accepted by `#![proptest_config(...)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Real proptest defaults to 256; the shim keeps tier-1 fast.
        ProptestConfig { cases: 64 }
    }
}

/// SplitMix64 generator handed to strategies. Seeded from a fixed base, the
/// test name and the case index, so every run of the suite samples the same
/// inputs and failures reproduce exactly.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn from_seed(state: u64) -> Self {
        TestRng { state }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xCBF2_9CE4_8422_2325u64;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

pub struct TestRunner {
    config: ProptestConfig,
}

impl TestRunner {
    pub fn new(config: ProptestConfig) -> Self {
        TestRunner { config }
    }

    /// Runs `f` once per configured case with a per-case deterministic RNG.
    /// A returned `Err` (from `prop_assert*`) panics with the failing case
    /// index so the standard test harness reports it.
    pub fn run<F>(&mut self, name: &str, mut f: F)
    where
        F: FnMut(&mut TestRng) -> Result<(), String>,
    {
        let base = fnv1a(name.as_bytes());
        for case in 0..self.config.cases as u64 {
            let mut rng = TestRng::from_seed(base ^ case.wrapping_mul(0xA076_1D64_78BD_642F));
            if let Err(message) = f(&mut rng) {
                panic!(
                    "proptest '{name}' failed at case {case}/{}: {message}",
                    self.config.cases
                );
            }
        }
    }
}
