//! Drive a full Malleus training session over the paper's straggler trace
//! (Normal → S1 → … → S6 → Normal) and print a per-phase report: adapted step
//! time, what the job would have paid without adapting, migration cost and the
//! number of standby GPUs.
//!
//! ```bash
//! cargo run --release --example straggler_trace
//! ```

use malleus::prelude::*;

fn main() {
    // The paper's 32B workload: 32 GPUs (4 nodes × 8), global batch 64.
    let cluster = Cluster::homogeneous(4, 8);
    let coeffs =
        ProfiledCoefficients::derive(ModelSpec::llama2_32b(), HardwareParams::a800_cluster());
    let trace = Trace::paper_trace(&cluster, 20);

    let mut session = TrainingSession::new(coeffs, PlannerConfig::default(), cluster);
    let report = session.run(&trace).expect("session should complete");

    println!(
        "{:<8} {:>10} {:>12} {:>10} {:>10} {:>8} {:>8}",
        "phase", "step (s)", "no-adapt (s)", "plan (s)", "migr (s)", "standby", "MFU"
    );
    for phase in &report.phases {
        println!(
            "{:<8} {:>10.2} {:>12.2} {:>10.2} {:>10.2} {:>8} {:>7.1}%",
            phase.situation,
            phase.step_time,
            phase.step_time_before_adaptation,
            phase.planning_time,
            phase.migration_time,
            phase.standby_gpus,
            phase.mfu * 100.0
        );
    }
    println!();
    println!(
        "trace total: {:.0} s over {} phases (avg {:.2} s/step)",
        report.total_time,
        report.phases.len(),
        report.average_step_time()
    );
}
