//! Mini ablation of the four non-uniform partitioning dimensions (§3.1,
//! Figure 9): start from uniform 3D parallelism and progressively enable
//! non-uniform layers, data, device grouping (straggler splitting) and stage
//! counts, printing the simulated step time after each addition.
//!
//! ```bash
//! cargo run --release --example planner_ablation
//! ```

use malleus::baselines::theoretic_optimal_time;
use malleus::prelude::*;

fn main() {
    // 110B-style scenario scaled down to the 32B model on 32 GPUs: three
    // stragglers of increasing severity on three different nodes.
    let mut cluster = Cluster::homogeneous(4, 8);
    cluster.set_rate(GpuId(0), 2.57);
    cluster.set_rate(GpuId(8), 5.42);
    cluster.set_rate(GpuId(16), 12.53);
    let snapshot = cluster.snapshot();

    let coeffs =
        ProfiledCoefficients::derive(ModelSpec::llama2_32b(), HardwareParams::a800_cluster());
    let sim = TrainingSimulator::new(coeffs.clone());

    // Healthy reference time for the theoretic optimum.
    let healthy_plan = Planner::new(coeffs.clone(), PlannerConfig::default())
        .plan(&Cluster::homogeneous(4, 8).snapshot())
        .unwrap();
    let healthy_time = sim
        .step(&healthy_plan.plan, &Cluster::homogeneous(4, 8).snapshot())
        .unwrap()
        .step_time;
    let optimum = theoretic_optimal_time(healthy_time, &snapshot);

    let variants: Vec<(&str, PlannerConfig)> = vec![
        (
            "uniform (Megatron-like)",
            PlannerConfig::ablation(false, false, false, false),
        ),
        (
            "+ non-uniform layers",
            PlannerConfig::ablation(true, false, false, false),
        ),
        (
            "+ non-uniform data",
            PlannerConfig::ablation(true, true, false, false),
        ),
        (
            "+ non-uniform devices",
            PlannerConfig::ablation(true, true, true, false),
        ),
        (
            "+ non-uniform stages",
            PlannerConfig::ablation(true, true, true, true),
        ),
    ];

    println!("scenario: x0=2.57 (node 0), x8=5.42 (node 1), x16=12.53 (node 2)");
    println!("theoretic optimum: {optimum:.2} s/step (healthy: {healthy_time:.2} s)");
    println!();
    println!(
        "{:<26} {:>12} {:>16}",
        "configuration", "step (s)", "gap to optimum"
    );
    for (label, config) in variants {
        let planner = Planner::new(coeffs.clone(), config);
        match planner.plan(&snapshot) {
            Ok(outcome) => match sim.step(&outcome.plan, &snapshot) {
                Ok(report) => {
                    let gap = 100.0 * (1.0 - optimum / report.step_time);
                    println!("{:<26} {:>12.2} {:>15.1}%", label, report.step_time, gap);
                }
                Err(e) => println!("{label:<26} {:>12}", format!("OOM: {e}")),
            },
            Err(e) => println!("{label:<26} {:>12}", format!("infeasible: {e}")),
        }
    }
}
