//! Quickstart: plan hybrid-parallel training around a straggler and compare
//! against a uniform (Megatron-style) plan.
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```

use malleus::prelude::*;

fn main() {
    // A 4-node × 8-GPU cluster training the 32B model, with one level-3
    // straggler (x = 5.42) on GPU 0 — the paper's S2 situation.
    let mut cluster = Cluster::homogeneous(4, 8);
    cluster.set_rate(GpuId(0), StragglerLevel::Level3.rate());
    let snapshot = cluster.snapshot();

    // Profile the model and hardware (this replaces the paper's online
    // profiler) and build the Malleus planner.
    let coeffs =
        ProfiledCoefficients::derive(ModelSpec::llama2_32b(), HardwareParams::a800_cluster());
    let planner = Planner::new(coeffs.clone(), PlannerConfig::default());

    // Deduce the straggler-aware parallelization plan.
    let outcome = planner.plan(&snapshot).expect("planning should succeed");
    println!(
        "=== Malleus plan (max TP {}, DP {}) ===",
        outcome.chosen_tp, outcome.dp
    );
    println!("{}", outcome.plan.describe(&snapshot));
    println!(
        "planner estimate: {:.2} s/step (simplified {:.2} s), planning took {:.0} ms",
        outcome.estimated_step_time,
        outcome.estimated_step_time_simplified,
        outcome.timing.total().as_secs_f64() * 1000.0
    );

    // Execute one simulated training step with the adapted plan.
    let malleus_step = simulate_step(&coeffs, &outcome.plan, &snapshot)
        .expect("plan fits in memory")
        .step_time;

    // Compare against the uniform plan Megatron-LM would use (DP2 × TP4 × PP4).
    let gpus: Vec<GpuId> = (0..32).map(GpuId).collect();
    let uniform = ParallelizationPlan::uniform(&gpus, 2, 4, 4, 60, 64, 1).unwrap();
    let uniform_step = simulate_step(&coeffs, &uniform, &snapshot)
        .expect("uniform plan fits in memory")
        .step_time;

    println!();
    println!("simulated step time with the straggler present:");
    println!("  Malleus (straggler-aware): {malleus_step:>7.2} s/step");
    println!("  uniform 3D parallelism:    {uniform_step:>7.2} s/step");
    println!(
        "  speedup:                   {:>7.2}x",
        uniform_step / malleus_step
    );
}
