//! Elastic scaling and failure recovery (§5.2).
//!
//! A GPU first becomes a heavy straggler (the planner parks it as a standby
//! device), then fails outright (the session recovers from a checkpoint with
//! the failed GPU excluded), and finally recovers (the next re-planning round
//! re-admits it).
//!
//! ```bash
//! cargo run --release --example elastic_failover
//! ```

use malleus::cluster::{Situation, TracePhase};
use malleus::prelude::*;

fn main() {
    let cluster = Cluster::homogeneous(4, 8);
    let coeffs =
        ProfiledCoefficients::derive(ModelSpec::llama2_32b(), HardwareParams::a800_cluster());

    let phases = [
        ("healthy", vec![]),
        (
            "heavy straggler on gpu3",
            vec![(GpuId(3), StragglerLevel::Level8.rate())],
        ),
        ("gpu3 fails", vec![(GpuId(3), f64::INFINITY)]),
        ("gpu3 recovers", vec![]),
    ];
    let trace = Trace {
        phases: phases
            .iter()
            .map(|(name, rates)| TracePhase {
                situation: Situation {
                    name: (*name).to_string(),
                    rates: rates.clone(),
                },
                iterations: 10,
            })
            .collect(),
    };

    let mut session = TrainingSession::new(coeffs, PlannerConfig::default(), cluster);
    let report = session.run(&trace).expect("session should complete");

    for phase in &report.phases {
        println!("== {} ==", phase.situation);
        println!(
            "  step {:.2} s | planning {:.2} s | migration {:.2} s | restart {:.1} s | standby GPUs {}",
            phase.step_time,
            phase.planning_time,
            phase.migration_time,
            phase.restart_time,
            phase.standby_gpus
        );
    }

    let healthy = report.phases.first().unwrap();
    let recovered = report.phases.last().unwrap();
    println!();
    println!(
        "step time healthy {:.2} s -> after recovery {:.2} s (the recovered GPU was re-admitted: {} standby devices remain)",
        healthy.step_time, recovered.step_time, recovered.standby_gpus
    );
}
